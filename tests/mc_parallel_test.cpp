// Determinism and stress coverage for the wave-parallel reachability core.
//
// The engine guarantees bit-identical results for every `jobs` setting: the
// sharded passed/waiting store inserts in deterministic rank order, so
// traces, statistics, and verified bounds must not depend on the thread
// count. These tests pin that contract on the shipped case-study models
// (pump, quickstart) and on a seeded synthetic model built to maximize racy
// interleavings (wide waves, heavy cross-shard traffic). The stress tests
// are part of the `fast` label so the ASan+UBSan CI job runs them.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/analysis.h"
#include "core/framework.h"
#include "core/pim.h"
#include "core/transform.h"
#include "gpca/pump_model.h"
#include "lang/model_parser.h"
#include "lang/scheme_parser.h"
#include "mc/query.h"
#include "mc/reach.h"
#include "model_paths.h"
#include "util/error.h"
#include "util/rng.h"

namespace psv {
namespace {

using namespace psv::ta;

const std::vector<unsigned> kJobCounts = {1, 2, 8};

bool stats_equal(const mc::ExploreStats& a, const mc::ExploreStats& b) {
  return a.states_stored == b.states_stored && a.states_explored == b.states_explored &&
         a.transitions_fired == b.transitions_fired && a.subsumed == b.subsumed;
}

std::string stats_str(const mc::ExploreStats& s) {
  std::ostringstream os;
  os << "stored=" << s.states_stored << " explored=" << s.states_explored
     << " fired=" << s.transitions_fired << " subsumed=" << s.subsumed;
  return os.str();
}

using psv::testing::find_model_dir;
using psv::testing::read_file;

// --- Determinism across job counts ------------------------------------------

TEST(ParallelDeterminism, PumpPimReachabilityIdenticalAcrossJobs) {
  const Network pim = gpca::build_pump_pim();
  std::vector<mc::ReachResult> results;
  for (unsigned jobs : kJobCounts) {
    mc::ExploreOptions opts;
    opts.jobs = jobs;
    results.push_back(mc::reachable(pim, mc::at(pim, "M", "Infusing"), opts));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].reachable, results[i].reachable);
    EXPECT_EQ(results[0].trace.to_string(), results[i].trace.to_string())
        << "trace must not depend on jobs=" << kJobCounts[i];
    EXPECT_TRUE(stats_equal(results[0].stats, results[i].stats))
        << "jobs=1: " << stats_str(results[0].stats) << "\njobs=" << kJobCounts[i] << ": "
        << stats_str(results[i].stats);
  }
}

TEST(ParallelDeterminism, PumpPimVerifiedBoundIdenticalAcrossJobs) {
  const Network pim = gpca::build_pump_pim();
  const core::PimInfo info = gpca::pump_pim_info(pim);
  const core::TimingRequirement req = gpca::req1();
  std::vector<core::PimVerification> results;
  for (unsigned jobs : kJobCounts) {
    mc::ExploreOptions explore;
    explore.jobs = jobs;
    results.push_back(core::verify_pim_requirement(pim, info, req, 100'000, explore));
  }
  for (const core::PimVerification& v : results) {
    EXPECT_TRUE(v.bounded);
    EXPECT_EQ(v.max_delay, results[0].max_delay);
    EXPECT_EQ(v.holds, results[0].holds);
  }
  EXPECT_EQ(results[0].max_delay, 500) << "paper's exact PIM bound";
}

TEST(ParallelDeterminism, PumpPsmFullExplorationIdenticalAcrossJobs) {
  gpca::PumpModelOptions opt;
  opt.include_empty_syringe = false;  // keeps the sweep in the seconds range
  const Network pim = gpca::build_pump_pim(opt);
  const core::PimInfo info = gpca::pump_pim_info(pim);
  const core::PsmArtifacts psm = core::transform(pim, info, gpca::board_scheme(opt));

  std::vector<mc::ExploreStats> stats;
  for (unsigned jobs : kJobCounts) {
    mc::ExploreOptions opts;
    opts.jobs = jobs;
    mc::Reachability engine(psm.psm, mc::StateFormula{}, opts);
    stats.push_back(engine.explore_all(nullptr));
  }
  for (std::size_t i = 1; i < stats.size(); ++i) {
    EXPECT_TRUE(stats_equal(stats[0], stats[i]))
        << "jobs=1: " << stats_str(stats[0]) << "\njobs=" << kJobCounts[i] << ": "
        << stats_str(stats[i]);
  }
  EXPECT_GT(stats[0].states_stored, 1000u) << "the sweep must be a real workload";
}

TEST(ParallelDeterminism, PumpPsmDeadlockSearchIdenticalAcrossJobs) {
  gpca::PumpModelOptions opt;
  opt.include_empty_syringe = false;
  const Network pim = gpca::build_pump_pim(opt);
  const core::PimInfo info = gpca::pump_pim_info(pim);
  const core::PsmArtifacts psm = core::transform(pim, info, gpca::board_scheme(opt));

  std::vector<mc::DeadlockResult> results;
  for (unsigned jobs : {1u, 8u}) {
    mc::ExploreOptions opts;
    opts.jobs = jobs;
    mc::Reachability engine(psm.psm, mc::StateFormula{}, opts);
    results.push_back(engine.find_deadlock());
  }
  EXPECT_EQ(results[0].found, results[1].found);
  EXPECT_EQ(results[0].timelock, results[1].timelock);
  EXPECT_EQ(results[0].trace.to_string(), results[1].trace.to_string());
  EXPECT_TRUE(stats_equal(results[0].stats, results[1].stats))
      << "jobs=1: " << stats_str(results[0].stats) << "\njobs=8: " << stats_str(results[1].stats);
}

TEST(ParallelDeterminism, QuickstartFrameworkIdenticalAcrossJobs) {
  const std::string dir = find_model_dir();
  if (dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  const Network pim = lang::parse_model(read_file(dir + "quickstart.psv"));
  const core::PimInfo info = core::analyze_pim(pim);
  const core::ImplementationScheme scheme = lang::parse_scheme(read_file(dir + "fast.pss"));
  const core::TimingRequirement req{"QREQ", "Req", "Ack", 80};

  std::vector<core::FrameworkResult> results;
  for (unsigned jobs : kJobCounts) {
    core::FrameworkOptions options;
    options.explore.jobs = jobs;
    results.push_back(core::run_framework(pim, info, scheme, req, options));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    // The rendered report embeds state counts from the shared constraint
    // exploration, so string equality pins stats determinism end to end.
    EXPECT_EQ(results[0].summary(), results[i].summary())
        << "full pipeline report must not depend on jobs=" << kJobCounts[i];
  }
  EXPECT_EQ(results[0].bounds.input_delays.at(0).verified, 14);
  EXPECT_EQ(results[0].bounds.output_delays.at(0).verified, 3);
  EXPECT_EQ(results[0].bounds.lemma2_total, 97);
  EXPECT_TRUE(results[0].psm_meets_relaxed);
}

// --- Seeded stress model -----------------------------------------------------

// A network built to produce wide waves and heavy cross-shard traffic: `n`
// automata, each looping through 3 locations on its own clock with a seeded
// timing window, all bumping a shared counter. The discrete product (3^n
// locations x counter values) fans out into hundreds of simultaneously
// waiting states whose insertions race across shards when jobs > 1.
Network stress_net(int n, std::uint64_t seed) {
  Rng rng(seed);
  Network net("stress");
  const VarId counter = net.add_var("counter", 0, 0, 3 * n);
  std::vector<ClockId> clocks;
  for (int i = 0; i < n; ++i) clocks.push_back(net.add_clock("x" + std::to_string(i)));
  for (int i = 0; i < n; ++i) {
    Automaton a("W" + std::to_string(i));
    const auto lo = static_cast<std::int32_t>(rng.uniform_int(1, 3));
    const auto hi = static_cast<std::int32_t>(rng.uniform_int(4, 8));
    const LocId l0 = a.add_location("L0", LocKind::kNormal, {cc_le(clocks[i], hi)});
    const LocId l1 = a.add_location("L1", LocKind::kNormal, {cc_le(clocks[i], hi)});
    const LocId l2 = a.add_location("L2", LocKind::kNormal, {cc_le(clocks[i], hi)});
    auto hop = [&](LocId src, LocId dst, bool bump) {
      Edge e;
      e.src = src;
      e.dst = dst;
      e.guard.clocks = {cc_ge(clocks[i], lo)};
      e.update.resets = {{clocks[i], 0}};
      if (bump) {
        // Two variants — a guarded bump and a saturated no-op — double the
        // enabled-edge fan-out without driving the counter out of range.
        Edge bumped = e;
        bumped.guard.data = var_lt(counter, 3 * n);
        bumped.update.assignments.push_back(
            {counter, IntExpr::var(counter) + IntExpr::constant(1)});
        a.add_edge(std::move(bumped));
        e.guard.data = var_eq(counter, 3 * n);
      }
      a.add_edge(std::move(e));
    };
    hop(l0, l1, true);
    hop(l1, l2, false);
    hop(l2, l0, false);
    net.add_automaton(std::move(a));
  }
  return net;
}

TEST(ParallelStress, SeededRacyInterleavingsAreDeterministic) {
  const Network net = stress_net(3, 2015);
  mc::ExploreOptions base;
  base.jobs = 1;
  mc::Reachability reference(net, mc::StateFormula{}, base);
  const mc::ExploreStats expected = reference.explore_all(nullptr);
  EXPECT_GT(expected.states_stored, 500u) << "stress model must produce wide waves";

  // Repeated parallel runs shake scheduling interleavings; every one must
  // reproduce the single-threaded exploration exactly.
  for (int round = 0; round < 3; ++round) {
    mc::ExploreOptions opts;
    opts.jobs = 8;
    mc::Reachability engine(net, mc::StateFormula{}, opts);
    const mc::ExploreStats stats = engine.explore_all(nullptr);
    EXPECT_TRUE(stats_equal(expected, stats))
        << "round " << round << "\njobs=1: " << stats_str(expected)
        << "\njobs=8: " << stats_str(stats);
  }
}

TEST(ParallelStress, ReachabilityGoalDeterministicUnderParallelism) {
  const Network net = stress_net(3, 7);
  const mc::StateFormula goal = mc::when(var_eq(0, 6));  // counter reaches 6
  std::vector<mc::ReachResult> results;
  for (unsigned jobs : kJobCounts) {
    mc::ExploreOptions opts;
    opts.jobs = jobs;
    results.push_back(mc::reachable(net, goal, opts));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].reachable, results[i].reachable);
    EXPECT_EQ(results[0].trace.to_string(), results[i].trace.to_string());
    EXPECT_TRUE(stats_equal(results[0].stats, results[i].stats))
        << "jobs=1: " << stats_str(results[0].stats) << "\njobs=" << kJobCounts[i] << ": "
        << stats_str(results[i].stats);
  }
}

TEST(ParallelStress, MaxStatesCapStillEnforcedUnderParallelism) {
  const Network net = stress_net(3, 2015);
  mc::ExploreOptions opts;
  opts.jobs = 8;
  opts.max_states = 100;
  EXPECT_THROW(mc::reachable(net, mc::when(var_eq(0, 999)), opts), Error);
}

}  // namespace
}  // namespace psv
