// Tests for the PSV modeling language: lexer, model parser, scheme parser
// and requirement parser.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/pim.h"
#include "lang/lexer.h"
#include "lang/manifest.h"
#include "lang/model_parser.h"
#include "lang/scheme_parser.h"
#include "mc/query.h"
#include "ta/validate.h"
#include "util/error.h"

namespace psv::lang {
namespace {

using psv::Error;

TEST(Lexer, TokenizesAllKinds) {
  const auto toks = tokenize("foo -> := <= >= == != < > && { } [ ] ( ) , : + - * ! ? 42");
  std::vector<TokKind> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  const std::vector<TokKind> expected = {
      TokKind::kIdent, TokKind::kArrow, TokKind::kAssign, TokKind::kLe, TokKind::kGe,
      TokKind::kEq, TokKind::kNe, TokKind::kLt, TokKind::kGt, TokKind::kAnd,
      TokKind::kLBrace, TokKind::kRBrace, TokKind::kLBracket, TokKind::kRBracket,
      TokKind::kLParen, TokKind::kRParen, TokKind::kComma, TokKind::kColon,
      TokKind::kPlus, TokKind::kMinus, TokKind::kStar, TokKind::kBang,
      TokKind::kQuestion, TokKind::kInt, TokKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(Lexer, CommentsAndPositions) {
  const auto toks = tokenize("a // comment\n# another\n  b");
  ASSERT_EQ(toks.size(), 3u);  // a, b, end
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 3);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(Lexer, HyphenatedIdentifiers) {
  const auto toks = tokenize("read-all sustained-until-read a->b");
  EXPECT_EQ(toks[0].text, "read-all");
  EXPECT_EQ(toks[1].text, "sustained-until-read");
  EXPECT_EQ(toks[2].text, "a");
  EXPECT_EQ(toks[3].kind, TokKind::kArrow);
  EXPECT_EQ(toks[4].text, "b");
}

TEST(Lexer, RejectsIllegalCharacter) { EXPECT_THROW(tokenize("a $ b"), Error); }

// ---------------------------------------------------------------------------

const char* kPingModel = R"(
network ping
clock x
clock env_x
var count = 0 in [0, 10]
input Ping
output Pong

automaton M {
  init loc Idle
  loc Busy inv x <= 100
  Idle -> Busy on m_Ping? do x := 0, count := count + 1
  Busy -> Idle when x >= 20 && count < 10 on c_Pong!
}

automaton ENV {
  init loc Idle
  loc Await
  Idle -> Await when env_x >= 50 on m_Ping! do env_x := 0
  Await -> Idle on c_Pong? do env_x := 0
}
)";

TEST(ModelParser, ParsesDeclarations) {
  ta::Network net = parse_model(kPingModel);
  EXPECT_EQ(net.name(), "ping");
  EXPECT_EQ(net.num_clocks(), 2);
  EXPECT_EQ(net.num_vars(), 1);
  EXPECT_EQ(net.channels().size(), 2u);
  EXPECT_TRUE(net.channel_by_name("m_Ping").has_value());
  EXPECT_TRUE(net.channel_by_name("c_Pong").has_value());
  EXPECT_EQ(net.num_automata(), 2);
  EXPECT_TRUE(ta::validate(net).ok());
}

TEST(ModelParser, ParsesGuardsAndUpdates) {
  ta::Network net = parse_model(kPingModel);
  const ta::Automaton& m = net.automaton(*net.automaton_by_name("M"));
  ASSERT_EQ(m.edges().size(), 2u);
  const ta::Edge& take = m.edges()[0];
  EXPECT_EQ(take.sync.dir, ta::SyncDir::kReceive);
  EXPECT_EQ(take.update.resets.size(), 1u);
  EXPECT_EQ(take.update.assignments.size(), 1u);
  const ta::Edge& reply = m.edges()[1];
  EXPECT_EQ(reply.sync.dir, ta::SyncDir::kSend);
  ASSERT_EQ(reply.guard.clocks.size(), 1u);
  EXPECT_EQ(reply.guard.clocks[0].op, ta::CmpOp::kGe);
  EXPECT_EQ(reply.guard.clocks[0].bound, 20);
  EXPECT_FALSE(reply.guard.data.is_trivially_true());
}

TEST(ModelParser, ParsedModelVerifies) {
  ta::Network net = parse_model(kPingModel);
  core::PimInfo info = core::analyze_pim(net);
  core::TimingRequirement req{"R", "Ping", "Pong", 100};
  core::PimVerification v = core::verify_pim_requirement(net, info, req, 10'000);
  EXPECT_TRUE(v.holds);
  EXPECT_EQ(v.max_delay, 100);
}

TEST(ModelParser, InvariantAndLocationKinds) {
  ta::Network net = parse_model(R"(
network kinds
clock x
automaton A {
  init loc N inv x <= 5 && x < 9
  loc U urgent
  loc C committed
  N -> U
  U -> C
}
)");
  const ta::Automaton& a = net.automaton(0);
  EXPECT_EQ(a.location(0).invariant.size(), 2u);
  EXPECT_EQ(a.location(1).kind, ta::LocKind::kUrgent);
  EXPECT_EQ(a.location(2).kind, ta::LocKind::kCommitted);
}

TEST(ModelParser, ForwardLocationReferences) {
  ta::Network net = parse_model(R"(
network fwd
automaton A {
  init loc First
  First -> Second
  loc Second
}
)");
  EXPECT_EQ(net.automaton(0).edges().size(), 1u);
}

TEST(ModelParser, BroadcastChannel) {
  ta::Network net = parse_model(R"(
network bc
channel tick broadcast
automaton A {
  init loc L
  L -> L on tick!
}
)");
  EXPECT_EQ(net.channels()[0].kind, ta::ChanKind::kBroadcast);
}

TEST(ModelParser, ErrorsCarryPositions) {
  try {
    parse_model("network x\nclock c\nautomaton A {\n  init loc L\n  L -> Nope\n}\n");
    FAIL() << "expected psv::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("Nope"), std::string::npos);
  }
}

TEST(ModelParser, UnknownClockInGuardRejected) {
  EXPECT_THROW(parse_model(R"(
network bad
automaton A {
  init loc L
  L -> L when y >= 3
}
)"),
               Error);
}

// ---------------------------------------------------------------------------

const char* kBoardScheme = R"(
scheme IS1_board {
  input BolusReq {
    signal sustained-until-read
    read polling interval 240
    delay 10 40
    min_interarrival 400
  }
  output StartInfusion { delay 100 440 }
  io {
    invocation periodic 200
    transfer buffers 5
    policy read-all
    stages 10 10 10
  }
}
)";

TEST(SchemeParser, ParsesBoardScheme) {
  core::ImplementationScheme is = parse_scheme(kBoardScheme);
  EXPECT_EQ(is.name, "IS1_board");
  const core::InputSpec& bolus = is.input("BolusReq");
  EXPECT_EQ(bolus.signal, core::SignalType::kSustainedUntilRead);
  EXPECT_EQ(bolus.read, core::ReadMechanism::kPolling);
  EXPECT_EQ(bolus.polling_interval, 240);
  EXPECT_EQ(bolus.delay_min, 10);
  EXPECT_EQ(bolus.delay_max, 40);
  EXPECT_EQ(bolus.min_interarrival, 400);
  EXPECT_EQ(is.output("StartInfusion").delay_max, 440);
  EXPECT_EQ(is.io.invocation, core::InvocationKind::kPeriodic);
  EXPECT_EQ(is.io.period, 200);
  EXPECT_EQ(is.io.buffer_size, 5);
  EXPECT_EQ(is.io.read_policy, core::ReadPolicy::kReadAll);
  EXPECT_EQ(is.io.read_stage_max, 10);
}

TEST(SchemeParser, ParsedBoundsMatchTable1) {
  core::ImplementationScheme is = parse_scheme(kBoardScheme);
  EXPECT_EQ(core::analytic_input_delay_bound(is, "BolusReq"), 490);
  EXPECT_EQ(core::analytic_output_delay_bound(is, "StartInfusion"), 440);
}

TEST(SchemeParser, AperiodicAndSharedVariable) {
  core::ImplementationScheme is = parse_scheme(R"(
scheme s {
  input Sig { signal pulse read interrupt delay 1 3 }
  output Done { delay 1 2 }
  io {
    invocation aperiodic
    transfer shared-variable
    policy read-one
  }
}
)");
  EXPECT_EQ(is.io.invocation, core::InvocationKind::kAperiodic);
  EXPECT_EQ(is.io.transfer, core::TransferKind::kSharedVariable);
  EXPECT_EQ(is.io.read_policy, core::ReadPolicy::kReadOne);
}

TEST(SchemeParser, UnknownPropertyRejected) {
  EXPECT_THROW(parse_scheme("scheme s { input A { frobnicate 3 } }"), Error);
}

// ---------------------------------------------------------------------------

TEST(RequirementParser, ParsesPaperPhrasing) {
  core::TimingRequirement req = parse_requirement("REQ1: BolusReq -> StartInfusion within 500");
  EXPECT_EQ(req.name, "REQ1");
  EXPECT_EQ(req.input, "BolusReq");
  EXPECT_EQ(req.output, "StartInfusion");
  EXPECT_EQ(req.bound_ms, 500);
}

TEST(RequirementParser, RejectsMalformed) {
  EXPECT_THROW(parse_requirement("REQ1 BolusReq -> X within 5"), Error);
  EXPECT_THROW(parse_requirement("REQ1: BolusReq -> X"), Error);
  EXPECT_THROW(parse_requirement("REQ1: BolusReq -> X within 5 extra"), Error);
}

// ---------------------------------------------------------------------------

TEST(RequirementList, ParsesLinesSkippingCommentsAndBlanks) {
  const auto reqs = parse_requirement_list(
      "# the pump requirements\n"
      "\n"
      "REQ1: BolusReq -> StartInfusion within 500\n"
      "  REQ2: BolusReq -> StopInfusion within 2500  \n"
      "# trailing comment\n");
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].name, "REQ1");
  EXPECT_EQ(reqs[1].output, "StopInfusion");
  EXPECT_EQ(reqs[1].bound_ms, 2500);
}

TEST(RequirementList, RejectsEmptyAndMalformed) {
  EXPECT_THROW(parse_requirement_list(""), Error);
  EXPECT_THROW(parse_requirement_list("# only comments\n"), Error);
  try {
    parse_requirement_list("REQ1: A -> B within 5\nbroken line\n");
    FAIL() << "malformed entry must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(Manifest, ParsesJobsWithSchemesAndRequirements) {
  const auto jobs = parse_manifest(
      "# two jobs\n"
      "job pump {\n"
      "  model models/pump.psv\n"
      "  scheme models/board.pss\n"
      "  scheme models/board_v2.pss\n"
      "  req REQ1: BolusReq -> StartInfusion within 500\n"
      "  req REQ2: BolusReq -> StopInfusion within 2500\n"
      "}\n"
      "job quickstart\n"
      "{\n"
      "  model quickstart.psv\n"
      "  scheme fast.pss\n"
      "  req QREQ: Req -> Ack within 80\n"
      "}\n");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].name, "pump");
  EXPECT_EQ(jobs[0].model_path, "models/pump.psv");
  ASSERT_EQ(jobs[0].scheme_paths.size(), 2u);
  EXPECT_EQ(jobs[0].scheme_paths[1], "models/board_v2.pss");
  ASSERT_EQ(jobs[0].requirements.size(), 2u);
  EXPECT_EQ(jobs[0].requirements[1].name, "REQ2");
  EXPECT_EQ(jobs[1].name, "quickstart");
  ASSERT_EQ(jobs[1].requirements.size(), 1u);
  EXPECT_EQ(jobs[1].requirements[0].bound_ms, 80);
}

TEST(SchemeParser, SweepRangesParseInTemplateMode) {
  const std::string source =
      "scheme S {\n"
      "  input A { signal pulse read polling interval sweep 40..240 step 40\n"
      "            delay 1 sweep 3..9 step 3 }\n"
      "  output B { delay 1 3 }\n"
      "  io { invocation periodic 10\n"
      "       transfer buffers 5 policy read-all stages 1 1 1 }\n"
      "}\n";
  const core::SchemeTemplate tmpl = parse_scheme_template(source);
  ASSERT_EQ(tmpl.axes.size(), 2u);
  EXPECT_EQ(tmpl.axes[0].label(), "input.A.polling_interval");
  EXPECT_EQ(tmpl.axes[0].count(), 6u);
  EXPECT_EQ(tmpl.axes[1].label(), "input.A.delay_max");
  EXPECT_EQ(tmpl.axes[1].count(), 3u);
  EXPECT_EQ(tmpl.candidate_count(), 18u);
  // The base scheme reads every swept position at LO.
  EXPECT_EQ(tmpl.base.inputs.at("A").polling_interval, 40);
  EXPECT_EQ(tmpl.base.inputs.at("A").delay_max, 3);

  // The same source through the non-template parser is rejected with a
  // pointer at the synthesis entry points.
  try {
    parse_scheme(source);
    FAIL() << "sweep outside template mode must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParse);
    EXPECT_NE(std::string(e.what()).find("synthesis templates"), std::string::npos)
        << e.what();
  }

  // Degenerate and duplicate ranges are rejected in template mode too.
  EXPECT_THROW(parse_scheme_template("scheme S {\n io { invocation periodic "
                                     "sweep 20..10 step 5\n transfer buffers 5 "
                                     "policy read-all stages 1 1 1 }\n}\n"),
               Error);
  EXPECT_THROW(parse_scheme_template("scheme S {\n input A { signal pulse read "
                                     "interrupt delay 1 sweep 3..9 step 3\n"
                                     " delay 1 sweep 3..9 step 3 }\n"
                                     " output B { delay 1 3 }\n"
                                     " io { invocation periodic 10\n transfer "
                                     "buffers 5 policy read-all stages 1 1 1 "
                                     "}\n}\n"),
               Error);
}

TEST(Manifest, ParsesSynthBlocksAlongsideJobs) {
  const lang::Manifest manifest = parse_manifest_full(
      "job pump {\n"
      "  model models/pump.psv\n"
      "  scheme models/board.pss\n"
      "  req REQ1: BolusReq -> StartInfusion within 500\n"
      "}\n"
      "synth pump_sweep {\n"
      "  model models/pump.psv\n"
      "  template models/board_sweep.pss\n"
      "  req REQ2: BolusReq -> StopInfusion within 2500\n"
      "}\n");
  ASSERT_EQ(manifest.jobs.size(), 1u);
  ASSERT_EQ(manifest.synth_jobs.size(), 1u);
  EXPECT_EQ(manifest.synth_jobs[0].name, "pump_sweep");
  EXPECT_EQ(manifest.synth_jobs[0].model_path, "models/pump.psv");
  EXPECT_EQ(manifest.synth_jobs[0].template_path, "models/board_sweep.pss");
  ASSERT_EQ(manifest.synth_jobs[0].requirements.size(), 1u);
  EXPECT_EQ(manifest.synth_jobs[0].requirements[0].name, "REQ2");

  // Synth blocks take 'template', not 'scheme' — and vice versa.
  EXPECT_THROW(parse_manifest_full("synth s {\n model m.psv\n scheme x.pss\n"
                                   " req R: A -> B within 5\n}\n"),
               Error);
  EXPECT_THROW(parse_manifest_full("job j {\n model m.psv\n template x.pss\n"
                                   " req R: A -> B within 5\n}\n"),
               Error);
  // The compatibility wrapper serves job blocks only and rejects
  // synth-only manifests.
  EXPECT_THROW(parse_manifest("synth s {\n model m.psv\n template x.pss\n"
                              " req R: A -> B within 5\n}\n"),
               Error);
}

TEST(Manifest, RejectsStructuralErrors) {
  EXPECT_THROW(parse_manifest(""), Error);
  // Missing model.
  EXPECT_THROW(parse_manifest("job a {\n scheme s.pss\n req R: A -> B within 5\n}\n"), Error);
  // Missing scheme.
  EXPECT_THROW(parse_manifest("job a {\n model m.psv\n req R: A -> B within 5\n}\n"), Error);
  // Missing requirements.
  EXPECT_THROW(parse_manifest("job a {\n model m.psv\n scheme s.pss\n}\n"), Error);
  // Two models.
  EXPECT_THROW(parse_manifest("job a {\n model m.psv\n model n.psv\n scheme s.pss\n"
                              " req R: A -> B within 5\n}\n"),
               Error);
  // Unclosed job.
  EXPECT_THROW(parse_manifest("job a {\n model m.psv\n scheme s.pss\n"
                              " req R: A -> B within 5\n"),
               Error);
  // Unknown key, with line context.
  try {
    parse_manifest("job a {\n model m.psv\n bogus x\n}\n");
    FAIL() << "unknown key must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace psv::lang
