// Tests for the PIM -> PSM transformation (§IV) and the §V analyses on a
// minimal ping/pong PIM whose numbers are easy to reason about.
#include "core/transform.h"

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/constraints.h"
#include "core/framework.h"
#include "mc/query.h"
#include "ta/print.h"
#include "util/error.h"

namespace psv::core {
namespace {

using namespace psv::ta;
using psv::Error;

// M: Idle --m_Ping?--> Busy[x<=100] --x>=20, c_Pong!--> Idle
// ENV: Idle --env_x>=50, m_Ping!--> Await --c_Pong?--> Idle
Network mini_pim(bool with_internal_edge = false) {
  Network net("mini");
  const ClockId x = net.add_clock("x");
  const ClockId env_x = net.add_clock("env_x");
  const ChanId ping = net.add_channel("m_Ping", ChanKind::kBinary);
  const ChanId pong = net.add_channel("c_Pong", ChanKind::kBinary);

  Automaton m("M");
  const LocId idle = m.add_location("Idle");
  const LocId busy = m.add_location("Busy", LocKind::kNormal, {cc_le(x, 100)});
  Edge take;
  take.src = idle;
  take.dst = busy;
  take.sync = SyncLabel::receive(ping);
  take.update.resets = {{x, 0}};
  m.add_edge(std::move(take));
  Edge reply;
  reply.src = busy;
  reply.dst = idle;
  reply.guard.clocks = {cc_ge(x, 20)};
  reply.sync = SyncLabel::send(pong);
  m.add_edge(std::move(reply));
  if (with_internal_edge) {
    // A housekeeping self-loop at Idle (internal transition for C4 tests).
    Edge tick;
    tick.src = idle;
    tick.dst = idle;
    tick.guard.clocks = {cc_ge(x, 10)};
    tick.update.resets = {{x, 0}};
    m.add_edge(std::move(tick));
  }
  net.add_automaton(std::move(m));

  Automaton env("ENV");
  const LocId eidle = env.add_location("Idle");
  const LocId await = env.add_location("Await");
  Edge send;
  send.src = eidle;
  send.dst = await;
  send.guard.clocks = {cc_ge(env_x, 50)};
  send.sync = SyncLabel::send(ping);
  send.update.resets = {{env_x, 0}};
  env.add_edge(std::move(send));
  Edge recv;
  recv.src = await;
  recv.dst = eidle;
  recv.sync = SyncLabel::receive(pong);
  recv.update.resets = {{env_x, 0}};
  env.add_edge(std::move(recv));
  net.add_automaton(std::move(env));
  return net;
}

ImplementationScheme mini_scheme() {
  ImplementationScheme is = example_is1({"Ping"}, {"Pong"});
  is.name = "MiniIS";
  is.inputs["Ping"].delay_min = 1;
  is.inputs["Ping"].delay_max = 3;
  is.outputs["Pong"].delay_min = 1;
  is.outputs["Pong"].delay_max = 5;
  is.io.period = 20;
  is.io.read_stage_max = 2;
  is.io.compute_stage_max = 2;
  is.io.write_stage_max = 2;
  is.io.buffer_size = 2;
  return is;
}

TEST(AnalyzePim, ExtractsStructure) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  EXPECT_EQ(pim.automaton(info.software).name(), "M");
  EXPECT_EQ(pim.automaton(info.environment).name(), "ENV");
  ASSERT_EQ(info.inputs.size(), 1u);
  EXPECT_EQ(info.inputs[0], "Ping");
  ASSERT_EQ(info.outputs.size(), 1u);
  EXPECT_EQ(info.outputs[0], "Pong");
}

TEST(AnalyzePim, RejectsGuardedInputReceive) {
  Network net("bad");
  const ClockId x = net.add_clock("x");
  const ChanId ping = net.add_channel("m_Ping", ChanKind::kBinary);
  net.add_channel("c_Pong", ChanKind::kBinary);
  Automaton m("M");
  const LocId idle = m.add_location("Idle");
  Edge take;
  take.src = idle;
  take.dst = idle;
  take.sync = SyncLabel::receive(ping);
  take.guard.clocks = {cc_ge(x, 5)};  // guarded input receive: not allowed
  m.add_edge(std::move(take));
  net.add_automaton(std::move(m));
  Automaton env("ENV");
  const LocId eidle = env.add_location("Idle");
  Edge send;
  send.src = eidle;
  send.dst = eidle;
  send.sync = SyncLabel::send(ping);
  env.add_edge(std::move(send));
  net.add_automaton(std::move(env));
  EXPECT_THROW(analyze_pim(net), Error);
}

TEST(AnalyzePim, RejectsWrongChannelDirection) {
  Network net("bad2");
  net.add_clock("x");
  const ChanId ping = net.add_channel("m_Ping", ChanKind::kBinary);
  net.add_channel("c_Pong", ChanKind::kBinary);
  Automaton m("M");
  const LocId idle = m.add_location("Idle");
  Edge send;
  send.src = idle;
  send.dst = idle;
  send.sync = SyncLabel::send(ping);  // software must not send inputs
  m.add_edge(std::move(send));
  net.add_automaton(std::move(m));
  Automaton env("ENV");
  env.add_location("Idle");
  net.add_automaton(std::move(env));
  EXPECT_THROW(analyze_pim(net), Error);
}

TEST(Transform, ProducesExpectedAutomata) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  PsmArtifacts psm = transform(pim, info, mini_scheme());
  EXPECT_TRUE(psm.psm.automaton_by_name("MIO").has_value());
  EXPECT_TRUE(psm.psm.automaton_by_name("ENVMC").has_value());
  EXPECT_TRUE(psm.psm.automaton_by_name("IFMI_Ping").has_value());
  EXPECT_TRUE(psm.psm.automaton_by_name("IFOC_Pong").has_value());
  EXPECT_TRUE(psm.psm.automaton_by_name("EXEIO").has_value());
  EXPECT_EQ(psm.psm.num_automata(), 5);
}

TEST(Transform, ChannelVocabulary) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  PsmArtifacts psm = transform(pim, info, mini_scheme());
  // Environment inputs become broadcast; everything else stays binary.
  const auto m_ping = psm.psm.channel_by_name("m_Ping");
  ASSERT_TRUE(m_ping.has_value());
  EXPECT_EQ(psm.psm.channels()[static_cast<std::size_t>(*m_ping)].kind, ChanKind::kBroadcast);
  for (const char* name : {"c_Pong", "i_Ping", "o_Pong", "push_Pong"}) {
    const auto chan = psm.psm.channel_by_name(name);
    ASSERT_TRUE(chan.has_value()) << name;
    EXPECT_EQ(psm.psm.channels()[static_cast<std::size_t>(*chan)].kind, ChanKind::kBinary) << name;
  }
}

TEST(Transform, MioIsInputEnabled) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  PsmArtifacts psm = transform(pim, info, mini_scheme());
  const Automaton& mio = psm.psm.automaton(*psm.psm.automaton_by_name("MIO"));
  const ChanId i_ping = *psm.psm.channel_by_name("i_Ping");
  // Every location must have a receive on i_Ping (original at Idle, the
  // discarding self-loop at Busy).
  for (LocId l = 0; l < static_cast<LocId>(mio.locations().size()); ++l) {
    bool receives = false;
    for (int ei : mio.edges_from(l)) {
      const Edge& e = mio.edges()[static_cast<std::size_t>(ei)];
      receives = receives || (e.sync.dir == SyncDir::kReceive && e.sync.chan == i_ping);
    }
    EXPECT_TRUE(receives) << "location " << mio.location(l).name << " not input-enabled";
  }
}

TEST(Transform, PsmIsDeadlockFree) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  PsmArtifacts psm = transform(pim, info, mini_scheme());
  mc::Reachability engine(psm.psm, mc::StateFormula{});
  mc::DeadlockResult r = engine.find_deadlock();
  EXPECT_FALSE(r.found) << r.trace.to_string();
}

TEST(Transform, InvalidSchemeRejected) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  ImplementationScheme is = mini_scheme();
  is.io.buffer_size = 0;
  EXPECT_THROW(transform(pim, info, is), Error);
}

TEST(Constraints, AllHoldForSaneScheme) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  PsmArtifacts psm = transform(pim, info, mini_scheme());
  ConstraintReport report = check_constraints(psm);
  EXPECT_TRUE(report.all_hold()) << report.to_string();
  EXPECT_GE(report.checks.size(), 4u);
}

TEST(Constraints, TinyBufferOverflowsUnderBurst) {
  // An environment that can fire two pings 1ms apart against a slow
  // periodic reader must overflow a size-1 buffer... but mini ENV is
  // request/response gated, so instead shrink the period headroom: with
  // min request gap 50 < period, two inputs can sit unread -> overflow of
  // a size-1 buffer is still impossible. Use a shared-variable scheme and
  // check the overwrite flag never fires for the gated environment.
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  ImplementationScheme is = mini_scheme();
  is.io.transfer = TransferKind::kSharedVariable;
  PsmArtifacts psm = transform(pim, info, is);
  ConstraintReport report = check_constraints(psm);
  EXPECT_TRUE(report.all_hold()) << report.to_string();
}

TEST(Analysis, AnalyticInputDelayFormula) {
  ImplementationScheme is = mini_scheme();
  // interrupt: delay_max(3) + period(20) + read_stage(2) = 25
  EXPECT_EQ(analytic_input_delay_bound(is, "Ping"), 25);
  is.inputs["Ping"].signal = SignalType::kSustainedUntilRead;
  is.inputs["Ping"].read = ReadMechanism::kPolling;
  is.inputs["Ping"].polling_interval = 10;
  EXPECT_EQ(analytic_input_delay_bound(is, "Ping"), 35);
  is.io.invocation = InvocationKind::kAperiodic;
  // aperiodic: poll(10) + delay_max(3) + cycle remainder (2+2+2) = 19
  EXPECT_EQ(analytic_input_delay_bound(is, "Ping"), 19);
}

TEST(Analysis, AnalyticOutputDelayFormula) {
  ImplementationScheme is = mini_scheme();
  EXPECT_EQ(analytic_output_delay_bound(is, "Pong"), 5);
}

TEST(Analysis, VerifiedBoundsWithinAnalytic) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  PsmArtifacts psm = transform(pim, info, mini_scheme());
  TimingRequirement req{"MiniReq", "Ping", "Pong", 100};
  BoundAnalysis bounds = analyze_bounds(psm, /*pim_internal_bound=*/100, req, 10'000);

  ASSERT_EQ(bounds.input_delays.size(), 1u);
  EXPECT_TRUE(bounds.input_delays[0].verified_bounded);
  EXPECT_LE(bounds.input_delays[0].verified, bounds.input_delays[0].analytic);
  EXPECT_GE(bounds.input_delays[0].verified, mini_scheme().io.period)
      << "worst case must at least span one invocation period";

  ASSERT_EQ(bounds.output_delays.size(), 1u);
  EXPECT_TRUE(bounds.output_delays[0].verified_bounded);
  EXPECT_LE(bounds.output_delays[0].verified, bounds.output_delays[0].analytic);

  EXPECT_EQ(bounds.lemma2_total, 25 + 5 + 100);
  EXPECT_TRUE(bounds.verified_mc_bounded);
  EXPECT_LE(bounds.verified_mc_delay, bounds.lemma2_total)
      << "Lemma 2 must upper-bound the exact M-C delay";
  // Generated code is eager (it emits at the first invocation where the
  // guard holds), so the exact PSM delay can undercut the PIM's lazy worst
  // case: input (<=25) + eager internal (<=20+period+stages) + output (<=5).
  EXPECT_GT(bounds.verified_mc_delay, 20 + 20)
      << "must cover at least the guard window start plus platform latency";
  EXPECT_LE(bounds.verified_mc_delay, 80);
}

TEST(Framework, EndToEndPipeline) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  TimingRequirement req{"MiniReq", "Ping", "Pong", 100};
  // A slow invocation period makes the platform-added delay dominate, so
  // the original bound (which the PIM meets exactly) breaks on the PSM.
  ImplementationScheme is = mini_scheme();
  is.io.period = 60;
  FrameworkOptions opts;
  opts.search_limit = 10'000;
  FrameworkResult result = run_framework(pim, info, is, req, opts);

  EXPECT_TRUE(result.pim.holds);
  EXPECT_EQ(result.pim.max_delay, 100);  // Busy invariant x<=100
  EXPECT_TRUE(result.constraints.all_hold()) << result.constraints.to_string();
  EXPECT_FALSE(result.psm_meets_original)
      << "platform delays must break the original 100ms bound";
  EXPECT_TRUE(result.psm_meets_relaxed);
  EXPECT_LE(result.bounds.verified_mc_delay, result.bounds.lemma2_total);
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("MiniReq"), std::string::npos);
  EXPECT_NE(summary.find("Lemma 2"), std::string::npos);
}

TEST(Transform, ReadOnePolicyBuildsAndIsSafe) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  ImplementationScheme is = mini_scheme();
  is.io.read_policy = ReadPolicy::kReadOne;
  PsmArtifacts psm = transform(pim, info, is);
  ConstraintReport report = check_constraints(psm);
  EXPECT_TRUE(report.all_hold()) << report.to_string();
}

TEST(Transform, AperiodicInvocationBounds) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  ImplementationScheme is = mini_scheme();
  is.io.invocation = InvocationKind::kAperiodic;
  PsmArtifacts psm = transform(pim, info, is);
  EXPECT_TRUE(psm.psm.channel_by_name("invoke").has_value());

  ConstraintReport report = check_constraints(psm);
  EXPECT_TRUE(report.all_hold()) << report.to_string();

  TimingRequirement req{"MiniReq", "Ping", "Pong", 100};
  BoundAnalysis bounds = analyze_bounds(psm, 100, req, 10'000);
  ASSERT_TRUE(bounds.input_delays[0].verified_bounded);
  // Aperiodic wakeup must beat the periodic wait.
  EXPECT_LT(bounds.input_delays[0].verified, 25);
}

TEST(Transform, PollingVariantBuilds) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  ImplementationScheme is = mini_scheme();
  is.inputs["Ping"].signal = SignalType::kSustainedUntilRead;
  is.inputs["Ping"].read = ReadMechanism::kPolling;
  is.inputs["Ping"].polling_interval = 10;
  PsmArtifacts psm = transform(pim, info, is);
  const InputArtifacts& in = psm.input("Ping");
  EXPECT_GE(in.poll_clock, 0);
  EXPECT_GE(in.latch, 0);
  ConstraintReport report = check_constraints(psm);
  EXPECT_TRUE(report.all_hold()) << report.to_string();
}

TEST(Transform, SustainedDurationPollingBuildsHolder) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  ImplementationScheme is = mini_scheme();
  is.inputs["Ping"].signal = SignalType::kSustainedDuration;
  is.inputs["Ping"].read = ReadMechanism::kPolling;
  is.inputs["Ping"].polling_interval = 10;
  is.inputs["Ping"].sustain_duration = 30;
  PsmArtifacts psm = transform(pim, info, is);
  EXPECT_TRUE(psm.psm.automaton_by_name("HOLD_Ping").has_value());
  mc::Reachability engine(psm.psm, mc::StateFormula{});
  EXPECT_FALSE(engine.find_deadlock().found);
}

TEST(Transform, PulsePollingRejected) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  ImplementationScheme is = mini_scheme();
  is.inputs["Ping"].read = ReadMechanism::kPolling;  // still pulse
  is.inputs["Ping"].polling_interval = 10;
  EXPECT_THROW(transform(pim, info, is), Error);
}

TEST(Constraint4, InternalEdgesInstrumented) {
  Network pim = mini_pim(/*with_internal_edge=*/true);
  PimInfo info = analyze_pim(pim);
  PsmArtifacts psm = transform(pim, info, mini_scheme());
  ASSERT_GE(psm.c4_violation, 0);
  // The housekeeping self-loop can fire while an input sits in the buffer,
  // so Constraint 4 must be detected as violated.
  ConstraintReport report = check_constraints(psm, /*include_deadlock_check=*/false);
  const auto c4 = report.with_id("C4");
  ASSERT_EQ(c4.size(), 1u);
  EXPECT_FALSE(c4[0].holds) << "internal transition during pending input must be flagged";
}

TEST(Constraint4, CleanModelPasses) {
  Network pim = mini_pim(/*with_internal_edge=*/false);
  PimInfo info = analyze_pim(pim);
  PsmArtifacts psm = transform(pim, info, mini_scheme());
  ConstraintReport report = check_constraints(psm, /*include_deadlock_check=*/false);
  const auto c4 = report.with_id("C4");
  ASSERT_EQ(c4.size(), 1u);
  EXPECT_TRUE(c4[0].holds);
}

TEST(Transform, ArtifactLookups) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  PsmArtifacts psm = transform(pim, info, mini_scheme());
  EXPECT_EQ(psm.input("Ping").base, "Ping");
  EXPECT_EQ(psm.output("Pong").base, "Pong");
  EXPECT_THROW(psm.input("Nope"), Error);
  EXPECT_THROW(psm.output("Nope"), Error);
}

TEST(Transform, PrintedModelMentionsSchemeMechanisms) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  PsmArtifacts psm = transform(pim, info, mini_scheme());
  const std::string text = network_text(psm.psm);
  EXPECT_NE(text.find("IFMI_Ping"), std::string::npos);
  EXPECT_NE(text.find("interrupt service begins"), std::string::npos);
  EXPECT_NE(text.find("periodic invocation"), std::string::npos);
  EXPECT_NE(text.find("input-enabled"), std::string::npos);
}

}  // namespace
}  // namespace psv::core
