// Unit and property tests for the DBM zone library.
#include "dbm/dbm.h"

#include <gtest/gtest.h>

#include <random>
#include <tuple>
#include <vector>

namespace psv::dbm {
namespace {

TEST(Bound, EncodingOrdersByTightness) {
  EXPECT_LT(bound_lt(5), bound_le(5));
  EXPECT_LT(bound_le(5), bound_lt(6));
  EXPECT_LT(bound_le(-3), bound_lt(0));
  EXPECT_LT(bound_le(1000000), kInf);
}

TEST(Bound, RoundTripValueAndStrictness) {
  for (std::int32_t v : {-100, -1, 0, 1, 7, 500, 123456}) {
    EXPECT_EQ(bound_value(bound_le(v)), v);
    EXPECT_EQ(bound_value(bound_lt(v)), v);
    EXPECT_TRUE(is_weak(bound_le(v)));
    EXPECT_FALSE(is_weak(bound_lt(v)));
  }
}

TEST(Bound, AdditionCombinesStrictness) {
  EXPECT_EQ(add(bound_le(2), bound_le(3)), bound_le(5));
  EXPECT_EQ(add(bound_le(2), bound_lt(3)), bound_lt(5));
  EXPECT_EQ(add(bound_lt(2), bound_lt(3)), bound_lt(5));
  EXPECT_EQ(add(bound_le(-2), bound_le(3)), bound_le(1));
  EXPECT_EQ(add(kInf, bound_le(3)), kInf);
  EXPECT_EQ(add(bound_lt(1), kInf), kInf);
}

TEST(Bound, NegationFlipsStrictness) {
  EXPECT_EQ(negate(bound_le(5)), bound_lt(-5));
  EXPECT_EQ(negate(bound_lt(5)), bound_le(-5));
  EXPECT_EQ(negate(negate(bound_le(7))), bound_le(7));
}

TEST(Bound, ToString) {
  EXPECT_EQ(bound_str(bound_le(5)), "<=5");
  EXPECT_EQ(bound_str(bound_lt(-2)), "<-2");
  EXPECT_EQ(bound_str(kInf), "inf");
}

TEST(Dbm, ZeroZoneContainsOnlyOrigin) {
  Dbm d = Dbm::zero(2);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.upper(1), bound_le(0));
  EXPECT_EQ(d.upper(2), bound_le(0));
  // Intersecting with x1 > 0 empties the zone.
  Dbm e = d;
  EXPECT_FALSE(e.constrain(0, 1, bound_lt(0)));
  EXPECT_TRUE(e.empty());
}

TEST(Dbm, UniversalZoneIncludesEverything) {
  Dbm u = Dbm::universal(3);
  Dbm z = Dbm::zero(3);
  z.up();
  EXPECT_TRUE(u.includes(z));
  EXPECT_TRUE(u.includes(Dbm::zero(3)));
  EXPECT_FALSE(Dbm::zero(3).includes(u));
}

TEST(Dbm, UpRemovesUpperBounds) {
  Dbm d = Dbm::zero(2);
  d.up();
  EXPECT_TRUE(is_inf(d.upper(1)));
  EXPECT_TRUE(is_inf(d.upper(2)));
  // Diagonal band: x1 - x2 == 0 is preserved by delay.
  EXPECT_EQ(d.at(1, 2), bound_le(0));
  EXPECT_EQ(d.at(2, 1), bound_le(0));
}

TEST(Dbm, ConstrainTightensAndPropagates) {
  Dbm d = Dbm::zero(2);
  d.up();
  ASSERT_TRUE(d.constrain(1, 0, bound_le(10)));  // x1 <= 10
  // Closure must propagate to x2 via x2 - x1 <= 0.
  EXPECT_EQ(d.upper(2), bound_le(10));
}

TEST(Dbm, ConstrainDetectsEmptiness) {
  Dbm d = Dbm::zero(1);
  d.up();
  ASSERT_TRUE(d.constrain(1, 0, bound_le(5)));   // x <= 5
  EXPECT_FALSE(d.constrain(0, 1, bound_le(-6))); // x >= 6
  EXPECT_TRUE(d.empty());
}

TEST(Dbm, ResetSetsExactValue) {
  Dbm d = Dbm::zero(2);
  d.up();
  ASSERT_TRUE(d.constrain(1, 0, bound_le(100)));
  d.reset(2, 0);
  EXPECT_EQ(d.upper(2), bound_le(0));
  EXPECT_EQ(d.lower(2), bound_le(0));
  // x1 unaffected in its absolute bounds.
  EXPECT_EQ(d.upper(1), bound_le(100));
  // Difference bound: x1 - x2 <= 100 after reset.
  EXPECT_EQ(d.at(1, 2), bound_le(100));
}

TEST(Dbm, ResetToNonzeroValue) {
  Dbm d = Dbm::zero(1);
  d.up();
  d.reset(1, 7);
  EXPECT_EQ(d.upper(1), bound_le(7));
  EXPECT_EQ(d.lower(1), bound_le(-7));
}

TEST(Dbm, FreeClockRemovesConstraints) {
  Dbm d = Dbm::zero(2);
  ASSERT_FALSE(d.empty());
  d.free_clock(1);
  EXPECT_TRUE(is_inf(d.upper(1)));
  EXPECT_EQ(d.lower(1), bound_le(0));
  // x2 still pinned at zero.
  EXPECT_EQ(d.upper(2), bound_le(0));
}

TEST(Dbm, IncludesIsReflexiveAndAntisymmetricOnDistinctZones) {
  Dbm a = Dbm::zero(1);
  a.up();
  ASSERT_TRUE(a.constrain(1, 0, bound_le(10)));
  Dbm b = a;
  ASSERT_TRUE(b.constrain(1, 0, bound_le(5)));
  EXPECT_TRUE(a.includes(a));
  EXPECT_TRUE(a.includes(b));
  EXPECT_FALSE(b.includes(a));
}

TEST(Dbm, IntersectsChecksSatisfiability) {
  Dbm d = Dbm::zero(1);
  d.up();
  ASSERT_TRUE(d.constrain(1, 0, bound_le(5)));  // 0 <= x <= 5
  EXPECT_TRUE(d.intersects(1, 0, bound_le(3)));   // x <= 3 feasible
  EXPECT_TRUE(d.intersects(0, 1, bound_le(-5)));  // x >= 5 feasible (boundary)
  EXPECT_FALSE(d.intersects(0, 1, bound_lt(-5))); // x > 5 infeasible
  EXPECT_FALSE(d.intersects(0, 1, bound_le(-6))); // x >= 6 infeasible
}

TEST(Dbm, ExtrapolationAbstractsLargeValues) {
  Dbm d = Dbm::zero(1);
  d.up();
  ASSERT_TRUE(d.constrain(0, 1, bound_le(-500)));  // x >= 500
  ASSERT_TRUE(d.constrain(1, 0, bound_le(800)));   // x <= 800
  d.extrapolate_max_bounds({0, 100});
  // Above the max constant 100 everything is indistinguishable:
  // upper bound gone, lower bound relaxed to > 100.
  EXPECT_TRUE(is_inf(d.upper(1)));
  EXPECT_EQ(d.lower(1), bound_lt(-100));
}

TEST(Dbm, ExtrapolationKeepsSmallValuesExact) {
  Dbm d = Dbm::zero(1);
  d.up();
  ASSERT_TRUE(d.constrain(1, 0, bound_le(50)));
  Dbm before = d;
  d.extrapolate_max_bounds({0, 100});
  EXPECT_TRUE(d == before);
}

TEST(Dbm, ExtrapolationIsAnUpperApproximation) {
  Dbm d = Dbm::zero(2);
  d.up();
  ASSERT_TRUE(d.constrain(1, 0, bound_le(300)));
  ASSERT_TRUE(d.constrain(0, 2, bound_le(-150)));
  Dbm before = d;
  d.extrapolate_max_bounds({0, 100, 100});
  EXPECT_TRUE(d.includes(before));
}

TEST(Dbm, ToStringRendersConstraints) {
  Dbm d = Dbm::zero(2);
  d.up();
  ASSERT_TRUE(d.constrain(1, 0, bound_le(5)));
  const std::string s = d.to_string({"x", "y"});
  EXPECT_NE(s.find("x<=5"), std::string::npos);
}

TEST(Dbm, HashDistinguishesZones) {
  Dbm a = Dbm::zero(1);
  a.up();
  Dbm b = a;
  ASSERT_TRUE(b.constrain(1, 0, bound_le(9)));
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), Dbm(a).hash());
}

// ---------------------------------------------------------------------------
// Property suite: random zones, checked against a brute-force point sampler.
// A DBM over small integer constants can be validated by enumerating integer
// points and checking membership consistency across operations.
// ---------------------------------------------------------------------------

class RandomZoneTest : public ::testing::TestWithParam<int> {};

namespace {

constexpr int kClocks = 3;
constexpr int kMaxConst = 6;

// Membership of an integer point in a canonical DBM.
bool contains_point(const Dbm& d, const std::vector<int>& pt) {
  auto value = [&](int i) { return i == 0 ? 0 : pt[static_cast<std::size_t>(i - 1)]; };
  for (int i = 0; i < d.dim(); ++i) {
    for (int j = 0; j < d.dim(); ++j) {
      if (i == j) continue;
      const raw_t b = d.at(i, j);
      if (is_inf(b)) continue;
      const int diff = value(i) - value(j);
      if (is_weak(b) ? diff > bound_value(b) : diff >= bound_value(b)) return false;
    }
  }
  return true;
}

std::vector<std::vector<int>> all_points(int max_value) {
  std::vector<std::vector<int>> pts;
  for (int a = 0; a <= max_value; ++a)
    for (int b = 0; b <= max_value; ++b)
      for (int c = 0; c <= max_value; ++c) pts.push_back({a, b, c});
  return pts;
}

Dbm random_zone(std::mt19937& gen) {
  Dbm d = Dbm::universal(kClocks);
  std::uniform_int_distribution<int> clock_dist(0, kClocks);
  std::uniform_int_distribution<int> const_dist(-kMaxConst, kMaxConst);
  std::uniform_int_distribution<int> strict_dist(0, 1);
  std::uniform_int_distribution<int> count_dist(2, 6);
  const int n = count_dist(gen);
  for (int k = 0; k < n; ++k) {
    const int i = clock_dist(gen);
    int j = clock_dist(gen);
    while (j == i) j = clock_dist(gen);
    d.constrain(i, j, make_bound(const_dist(gen), strict_dist(gen) == 1));
    if (d.empty()) break;
  }
  return d;
}

}  // namespace

TEST_P(RandomZoneTest, ConstrainMatchesPointwiseIntersection) {
  std::mt19937 gen(static_cast<unsigned>(GetParam()));
  Dbm d = random_zone(gen);
  if (d.empty()) GTEST_SKIP() << "empty zone drawn";
  std::uniform_int_distribution<int> clock_dist(0, kClocks);
  std::uniform_int_distribution<int> const_dist(-kMaxConst, kMaxConst);
  const int i = clock_dist(gen);
  int j = clock_dist(gen);
  while (j == i) j = clock_dist(gen);
  const raw_t b = make_bound(const_dist(gen), true);

  Dbm constrained = d;
  constrained.constrain(i, j, b);

  for (const auto& pt : all_points(2 * kMaxConst)) {
    auto value = [&](int k) { return k == 0 ? 0 : pt[static_cast<std::size_t>(k - 1)]; };
    const bool in_original = contains_point(d, pt);
    const bool meets_constraint = value(i) - value(j) <= bound_value(b);
    const bool expected = in_original && meets_constraint;
    if (constrained.empty()) {
      EXPECT_FALSE(expected) << "zone claims empty but point satisfies";
    } else {
      EXPECT_EQ(contains_point(constrained, pt), expected);
    }
  }
}

TEST_P(RandomZoneTest, UpMatchesPointwiseDelay) {
  std::mt19937 gen(static_cast<unsigned>(GetParam() + 1000));
  Dbm d = random_zone(gen);
  if (d.empty()) GTEST_SKIP() << "empty zone drawn";
  Dbm delayed = d;
  delayed.up();

  // Every point in d shifted by any delta in [0, 4] must lie in delayed.
  for (const auto& pt : all_points(kMaxConst)) {
    if (!contains_point(d, pt)) continue;
    for (int delta = 0; delta <= 4; ++delta) {
      std::vector<int> shifted = pt;
      for (int& v : shifted) v += delta;
      EXPECT_TRUE(contains_point(delayed, shifted))
          << "delay closure lost a reachable valuation";
    }
  }
}

TEST_P(RandomZoneTest, ResetMatchesPointwiseProjection) {
  std::mt19937 gen(static_cast<unsigned>(GetParam() + 2000));
  Dbm d = random_zone(gen);
  if (d.empty()) GTEST_SKIP() << "empty zone drawn";
  std::uniform_int_distribution<int> clock_dist(1, kClocks);
  const int x = clock_dist(gen);
  Dbm r = d;
  r.reset(x, 0);

  for (const auto& pt : all_points(2 * kMaxConst)) {
    if (!contains_point(d, pt)) continue;
    std::vector<int> projected = pt;
    projected[static_cast<std::size_t>(x - 1)] = 0;
    EXPECT_TRUE(contains_point(r, projected)) << "reset lost a projected valuation";
  }
}

TEST_P(RandomZoneTest, InclusionIsConsistentWithPoints) {
  std::mt19937 gen(static_cast<unsigned>(GetParam() + 3000));
  Dbm a = random_zone(gen);
  Dbm b = random_zone(gen);
  if (a.empty() || b.empty()) GTEST_SKIP() << "empty zone drawn";
  if (a.includes(b)) {
    for (const auto& pt : all_points(2 * kMaxConst)) {
      if (contains_point(b, pt)) {
        EXPECT_TRUE(contains_point(a, pt)) << "includes() claimed superset but point escapes";
      }
    }
  }
}

TEST_P(RandomZoneTest, CanonicalFormIsIdempotent) {
  std::mt19937 gen(static_cast<unsigned>(GetParam() + 4000));
  Dbm d = random_zone(gen);
  Dbm again = d;
  again.canonicalize();
  if (!d.empty()) {
    EXPECT_TRUE(d == again);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomZoneTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace psv::dbm
