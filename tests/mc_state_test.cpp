// Tests for symbolic states, state formulas and trace machinery.
#include <gtest/gtest.h>

#include "mc/reach.h"
#include "mc/state.h"
#include "ta/model.h"
#include "util/error.h"

namespace psv::mc {
namespace {

using namespace psv::ta;
using psv::Error;

Network two_automata_net() {
  Network net("pair");
  net.add_clock("x");
  net.add_var("v", 0, 0, 5);
  Automaton a("A");
  a.add_location("A0");
  a.add_location("A1");
  net.add_automaton(std::move(a));
  Automaton b("B");
  b.add_location("B0");
  b.add_location("B1");
  net.add_automaton(std::move(b));
  return net;
}

SymState make_state(const Network& net, std::vector<LocId> locs, std::vector<std::int64_t> vars) {
  SymState s;
  s.locs = std::move(locs);
  s.vars = std::move(vars);
  s.zone = dbm::Dbm::zero(net.num_clocks());
  s.zone.up();
  return s;
}

TEST(StateFormula, LocationRequirement) {
  Network net = two_automata_net();
  SymState s = make_state(net, {0, 1}, {0});
  EXPECT_TRUE(satisfies(net, s, at(net, "A", "A0")));
  EXPECT_FALSE(satisfies(net, s, at(net, "A", "A1")));
  EXPECT_TRUE(satisfies(net, s, at(net, "B", "B1")));
}

TEST(StateFormula, NegatedLocation) {
  Network net = two_automata_net();
  SymState s = make_state(net, {0, 1}, {0});
  EXPECT_TRUE(satisfies(net, s, not_at(net, "A", "A1")));
  EXPECT_FALSE(satisfies(net, s, not_at(net, "A", "A0")));
}

TEST(StateFormula, ConjunctionAcrossAutomata) {
  Network net = two_automata_net();
  SymState s = make_state(net, {0, 1}, {0});
  StateFormula f = at(net, "A", "A0");
  f.and_loc(*net.automaton_by_name("B"), net.automaton(1).loc_by_name("B1"));
  EXPECT_TRUE(satisfies(net, s, f));
  StateFormula g = at(net, "A", "A0");
  g.and_loc(*net.automaton_by_name("B"), net.automaton(1).loc_by_name("B0"));
  EXPECT_FALSE(satisfies(net, s, g));
}

TEST(StateFormula, DataPredicate) {
  Network net = two_automata_net();
  SymState s = make_state(net, {0, 0}, {3});
  EXPECT_TRUE(satisfies(net, s, when(var_eq(0, 3))));
  EXPECT_FALSE(satisfies(net, s, when(var_eq(0, 4))));
  EXPECT_TRUE(satisfies(net, s, when(var_ge(0, 2) && var_lt(0, 5))));
}

TEST(StateFormula, ClockConstraintsAreExistential) {
  Network net = two_automata_net();
  SymState s = make_state(net, {0, 0}, {0});
  // Zone is x >= 0 (delay-closed from zero): any upper window intersects.
  StateFormula f;
  f.and_clock(cc_ge(0, 100));
  EXPECT_TRUE(satisfies(net, s, f));
  // Bounded zone: x == 0 only.
  SymState pinned = s;
  pinned.zone = dbm::Dbm::zero(net.num_clocks());
  StateFormula g;
  g.and_clock(cc_gt(0, 0));
  EXPECT_FALSE(satisfies(net, pinned, g));
  StateFormula h;
  h.and_clock(cc_le(0, 0));
  EXPECT_TRUE(satisfies(net, pinned, h));
}

TEST(StateFormula, EqualityConstraint) {
  Network net = two_automata_net();
  SymState s = make_state(net, {0, 0}, {0});
  StateFormula f;
  f.and_clock(cc_eq(0, 42));
  EXPECT_TRUE(satisfies(net, s, f));
}

TEST(StateFormula, UnknownNamesThrow) {
  Network net = two_automata_net();
  EXPECT_THROW(at(net, "Nope", "A0"), Error);
  EXPECT_THROW(at(net, "A", "Nope"), Error);
}

TEST(StateFormula, ToStringMentionsParts) {
  Network net = two_automata_net();
  StateFormula f = at(net, "A", "A1");
  f.and_data(var_eq(0, 2));
  f.and_clock(cc_gt(0, 7));
  const std::string s = f.to_string(net);
  EXPECT_NE(s.find("A.A1"), std::string::npos);
  EXPECT_NE(s.find("v == 2"), std::string::npos);
  EXPECT_NE(s.find("x>7"), std::string::npos);
  EXPECT_EQ(StateFormula{}.to_string(net), "true");
}

TEST(StateFormula, FormulaClockConstants) {
  Network net = two_automata_net();
  StateFormula f;
  f.and_clock(cc_gt(0, 750));
  const auto consts = formula_clock_constants(net, f);
  ASSERT_EQ(consts.size(), 1u);
  EXPECT_EQ(consts[0], 750);
  const auto none = formula_clock_constants(net, StateFormula{});
  EXPECT_EQ(none[0], -1);
}

TEST(SymState, DiscreteHashAndEquality) {
  Network net = two_automata_net();
  SymState a = make_state(net, {0, 1}, {2});
  SymState b = make_state(net, {0, 1}, {2});
  SymState c = make_state(net, {1, 1}, {2});
  SymState d = make_state(net, {0, 1}, {3});
  EXPECT_TRUE(a.same_discrete(b));
  EXPECT_EQ(a.discrete_hash(), b.discrete_hash());
  EXPECT_FALSE(a.same_discrete(c));
  EXPECT_FALSE(a.same_discrete(d));
}

TEST(SymState, ToStringRendersEverything) {
  Network net = two_automata_net();
  SymState s = make_state(net, {0, 1}, {4});
  const std::string text = s.to_string(net);
  EXPECT_NE(text.find("A.A0"), std::string::npos);
  EXPECT_NE(text.find("B.B1"), std::string::npos);
  EXPECT_NE(text.find("v=4"), std::string::npos);
}

TEST(Trace, RendersLabelsAndStates) {
  // A two-step chain gives a two-edge trace.
  Network net("chain");
  Automaton a("A");
  const LocId l0 = a.add_location("L0");
  const LocId l1 = a.add_location("L1");
  const LocId l2 = a.add_location("L2");
  Edge e1;
  e1.src = l0;
  e1.dst = l1;
  a.add_edge(e1);
  Edge e2;
  e2.src = l1;
  e2.dst = l2;
  a.add_edge(e2);
  net.add_automaton(std::move(a));
  ReachResult r = reachable(net, at(net, "A", "L2"));
  ASSERT_TRUE(r.reachable);
  ASSERT_EQ(r.trace.steps.size(), 3u);  // initial + 2 steps
  const std::string text = r.trace.to_string();
  EXPECT_NE(text.find("A.L0->L1"), std::string::npos);
  EXPECT_NE(text.find("A.L1->L2"), std::string::npos);
}

}  // namespace
}  // namespace psv::mc
