// Cross-validation of the zone-based model checker against an independent
// discrete-time explicit-state checker.
//
// For closed timed automata (only non-strict clock constraints), integer
// digitization preserves location reachability [Henzinger/Manna/Pnueli],
// so a brute-force BFS over integer clock valuations (with clocks capped
// one past the largest constant) must agree with the DBM engine on every
// reachability question. Random networks are generated per seed and every
// (automaton, location) pair is compared.
#include <gtest/gtest.h>

#include <deque>
#include <random>
#include <set>

#include "mc/reach.h"
#include "ta/model.h"

namespace psv::mc {
namespace {

using namespace psv::ta;

constexpr std::int32_t kMaxConst = 5;

// --- independent discrete-time checker -------------------------------------

struct DiscreteState {
  std::vector<LocId> locs;
  std::vector<std::int32_t> clocks;  // capped at kMaxConst + 1

  bool operator<(const DiscreteState& o) const {
    if (locs != o.locs) return locs < o.locs;
    return clocks < o.clocks;
  }
};

bool clock_cc_holds(const ClockConstraint& cc, std::int32_t value) {
  switch (cc.op) {
    case CmpOp::kLt: return value < cc.bound;
    case CmpOp::kLe: return value <= cc.bound;
    case CmpOp::kEq: return value == cc.bound;
    case CmpOp::kGe: return value >= cc.bound;
    case CmpOp::kGt: return value > cc.bound;
    case CmpOp::kNe: return value != cc.bound;
  }
  return false;
}

class DiscreteChecker {
 public:
  explicit DiscreteChecker(const Network& net) : net_(net) { explore(); }

  bool loc_reachable(AutomatonId a, LocId l) const {
    for (const DiscreteState& s : visited_)
      if (s.locs[static_cast<std::size_t>(a)] == l) return true;
    return false;
  }

 private:
  bool guard_holds(const Guard& g, const std::vector<std::int32_t>& clocks) const {
    for (const ClockConstraint& cc : g.clocks)
      if (!clock_cc_holds(cc, clocks[static_cast<std::size_t>(cc.clock)])) return false;
    return g.data.is_trivially_true();  // generator emits no data guards
  }

  bool invariants_hold(const std::vector<LocId>& locs,
                       const std::vector<std::int32_t>& clocks) const {
    for (AutomatonId a = 0; a < net_.num_automata(); ++a)
      for (const ClockConstraint& cc :
           net_.automaton(a).location(locs[static_cast<std::size_t>(a)]).invariant)
        if (!clock_cc_holds(cc, clocks[static_cast<std::size_t>(cc.clock)])) return false;
    return true;
  }

  void apply_resets(const Update& u, std::vector<std::int32_t>& clocks) const {
    for (const ClockReset& r : u.resets) clocks[static_cast<std::size_t>(r.clock)] = r.value;
  }

  void push(DiscreteState s) {
    if (visited_.insert(s).second) frontier_.push_back(std::move(s));
  }

  void explore() {
    DiscreteState init;
    for (AutomatonId a = 0; a < net_.num_automata(); ++a)
      init.locs.push_back(net_.automaton(a).initial());
    init.clocks.assign(static_cast<std::size_t>(net_.num_clocks()), 0);
    if (!invariants_hold(init.locs, init.clocks)) return;
    push(init);
    while (!frontier_.empty()) {
      const DiscreteState s = frontier_.front();
      frontier_.pop_front();
      // Delay by one unit (cap past the max constant: larger values are
      // indistinguishable for closed constraints <= kMaxConst).
      DiscreteState delayed = s;
      for (std::int32_t& c : delayed.clocks) c = std::min<std::int32_t>(c + 1, kMaxConst + 1);
      if (invariants_hold(delayed.locs, delayed.clocks)) push(std::move(delayed));
      // Internal edges.
      for (AutomatonId a = 0; a < net_.num_automata(); ++a) {
        const Automaton& aut = net_.automaton(a);
        for (int ei : aut.edges_from(s.locs[static_cast<std::size_t>(a)])) {
          const Edge& e = aut.edges()[static_cast<std::size_t>(ei)];
          if (e.sync.dir != SyncDir::kNone) continue;
          if (!guard_holds(e.guard, s.clocks)) continue;
          DiscreteState next = s;
          next.locs[static_cast<std::size_t>(a)] = e.dst;
          apply_resets(e.update, next.clocks);
          if (invariants_hold(next.locs, next.clocks)) push(std::move(next));
        }
      }
      // Binary synchronizations.
      for (AutomatonId sa = 0; sa < net_.num_automata(); ++sa) {
        const Automaton& sender = net_.automaton(sa);
        for (int si : sender.edges_from(s.locs[static_cast<std::size_t>(sa)])) {
          const Edge& se = sender.edges()[static_cast<std::size_t>(si)];
          if (se.sync.dir != SyncDir::kSend) continue;
          if (!guard_holds(se.guard, s.clocks)) continue;
          for (AutomatonId ra = 0; ra < net_.num_automata(); ++ra) {
            if (ra == sa) continue;
            const Automaton& receiver = net_.automaton(ra);
            for (int ri : receiver.edges_from(s.locs[static_cast<std::size_t>(ra)])) {
              const Edge& re = receiver.edges()[static_cast<std::size_t>(ri)];
              if (re.sync.dir != SyncDir::kReceive || re.sync.chan != se.sync.chan) continue;
              if (!guard_holds(re.guard, s.clocks)) continue;
              DiscreteState next = s;
              next.locs[static_cast<std::size_t>(sa)] = se.dst;
              next.locs[static_cast<std::size_t>(ra)] = re.dst;
              apply_resets(se.update, next.clocks);
              apply_resets(re.update, next.clocks);
              if (invariants_hold(next.locs, next.clocks)) push(std::move(next));
            }
          }
        }
      }
    }
  }

  const Network& net_;
  std::set<DiscreteState> visited_;
  std::deque<DiscreteState> frontier_;
};

// --- random closed-TA generator ---------------------------------------------

Network random_network(std::mt19937& gen) {
  Network net("random");
  std::uniform_int_distribution<int> clock_count(1, 2);
  std::uniform_int_distribution<int> loc_count(2, 3);
  std::uniform_int_distribution<int> edge_count(2, 4);
  std::uniform_int_distribution<std::int32_t> constant(0, kMaxConst);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> die(0, 5);

  const int n_clocks = clock_count(gen);
  for (int c = 0; c < n_clocks; ++c) net.add_clock("c" + std::to_string(c));
  const ChanId chan = net.add_channel("sync", ChanKind::kBinary);

  std::uniform_int_distribution<int> clock_pick(0, n_clocks - 1);
  for (int a = 0; a < 2; ++a) {
    Automaton aut("A" + std::to_string(a));
    const int n_locs = loc_count(gen);
    for (int l = 0; l < n_locs; ++l) {
      std::vector<ClockConstraint> inv;
      // Invariants sparingly, always satisfiable at zero (bound >= 0).
      if (die(gen) == 0) inv.push_back(cc_le(clock_pick(gen), constant(gen)));
      aut.add_location("L" + std::to_string(l), LocKind::kNormal, std::move(inv));
    }
    std::uniform_int_distribution<int> loc_pick(0, n_locs - 1);
    const int n_edges = edge_count(gen);
    for (int e = 0; e < n_edges; ++e) {
      Edge edge;
      edge.src = loc_pick(gen);
      edge.dst = loc_pick(gen);
      // Closed guards only (<= / >=) so digitization is exact.
      if (coin(gen) == 1)
        edge.guard.clocks.push_back(coin(gen) == 1 ? cc_ge(clock_pick(gen), constant(gen))
                                                   : cc_le(clock_pick(gen), constant(gen)));
      const int role = die(gen);
      if (role == 0) {
        edge.sync = SyncLabel::send(chan);
      } else if (role == 1) {
        edge.sync = SyncLabel::receive(chan);
      }
      if (coin(gen) == 1) edge.update.resets.push_back({clock_pick(gen), 0});
      aut.add_edge(std::move(edge));
    }
    net.add_automaton(std::move(aut));
  }
  return net;
}

class DigitizationTest : public ::testing::TestWithParam<int> {};

TEST_P(DigitizationTest, ZoneEngineAgreesWithDiscreteChecker) {
  std::mt19937 gen(static_cast<unsigned>(GetParam()));
  const Network net = random_network(gen);
  const DiscreteChecker discrete(net);

  for (AutomatonId a = 0; a < net.num_automata(); ++a) {
    const Automaton& aut = net.automaton(a);
    for (LocId l = 0; l < static_cast<LocId>(aut.locations().size()); ++l) {
      StateFormula goal;
      goal.and_loc(a, l);
      const bool zone_says = reachable(net, goal).reachable;
      const bool discrete_says = discrete.loc_reachable(a, l);
      EXPECT_EQ(zone_says, discrete_says)
          << "disagreement on " << aut.name() << "." << aut.location(l).name << " (seed "
          << GetParam() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DigitizationTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace psv::mc
