// Tests for implementation schemes (§III) and their validation rules.
#include "core/scheme.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace psv::core {
namespace {

const std::vector<std::string> kIns = {"BolusReq"};
const std::vector<std::string> kOuts = {"StartInfusion"};

TEST(Scheme, Example1IsValid) {
  ImplementationScheme is = example_is1(kIns, kOuts);
  EXPECT_EQ(is.name, "IS1");
  EXPECT_TRUE(validate_scheme(is, kIns, kOuts).ok());
  EXPECT_EQ(is.input("BolusReq").delay_min, 1);
  EXPECT_EQ(is.input("BolusReq").delay_max, 3);
  EXPECT_EQ(is.io.period, 100);
  EXPECT_EQ(is.io.buffer_size, 5);
}

TEST(Scheme, DescribeMatchesPaperNotation) {
  ImplementationScheme is = example_is1(kIns, kOuts);
  const std::string text = is.describe();
  EXPECT_NE(text.find("pulse"), std::string::npos);
  EXPECT_NE(text.find("interrupt"), std::string::npos);
  EXPECT_NE(text.find("buffer-size=5"), std::string::npos);
  EXPECT_NE(text.find("period=100"), std::string::npos);
  EXPECT_NE(text.find("read-all"), std::string::npos);
}

TEST(Scheme, MissingSpecDetected) {
  ImplementationScheme is = example_is1(kIns, kOuts);
  SchemeValidation v = validate_scheme(is, {"BolusReq", "EmptySyringe"}, kOuts);
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.to_string().find("EmptySyringe"), std::string::npos);
}

TEST(Scheme, DanglingSpecDetected) {
  ImplementationScheme is = example_is1(kIns, kOuts);
  is.inputs.emplace("Ghost", InputSpec{});
  SchemeValidation v = validate_scheme(is, kIns, kOuts);
  EXPECT_FALSE(v.ok());
}

TEST(Scheme, PulseCannotBePolled) {
  ImplementationScheme is = example_is1(kIns, kOuts);
  is.inputs["BolusReq"].read = ReadMechanism::kPolling;
  is.inputs["BolusReq"].polling_interval = 50;
  SchemeValidation v = validate_scheme(is, kIns, kOuts);
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.to_string().find("pulse"), std::string::npos);
}

TEST(Scheme, PollingNeedsPositiveInterval) {
  ImplementationScheme is = example_is1(kIns, kOuts);
  is.inputs["BolusReq"].signal = SignalType::kSustainedUntilRead;
  is.inputs["BolusReq"].read = ReadMechanism::kPolling;
  is.inputs["BolusReq"].polling_interval = 0;
  EXPECT_FALSE(validate_scheme(is, kIns, kOuts).ok());
  is.inputs["BolusReq"].polling_interval = 25;
  EXPECT_TRUE(validate_scheme(is, kIns, kOuts).ok());
}

TEST(Scheme, ShortSustainedSignalVsPollingRejected) {
  ImplementationScheme is = example_is1(kIns, kOuts);
  auto& spec = is.inputs["BolusReq"];
  spec.signal = SignalType::kSustainedDuration;
  spec.read = ReadMechanism::kPolling;
  spec.polling_interval = 100;
  spec.sustain_duration = 50;  // shorter than the polling interval
  SchemeValidation v = validate_scheme(is, kIns, kOuts);
  EXPECT_FALSE(v.ok());
  spec.sustain_duration = 150;
  EXPECT_TRUE(validate_scheme(is, kIns, kOuts).ok());
}

TEST(Scheme, DelayWindowValidated) {
  ImplementationScheme is = example_is1(kIns, kOuts);
  is.inputs["BolusReq"].delay_min = 5;
  is.inputs["BolusReq"].delay_max = 2;
  EXPECT_FALSE(validate_scheme(is, kIns, kOuts).ok());
  is.inputs["BolusReq"].delay_min = -1;
  EXPECT_FALSE(validate_scheme(is, kIns, kOuts).ok());
}

TEST(Scheme, PeriodicNeedsPositivePeriod) {
  ImplementationScheme is = example_is1(kIns, kOuts);
  is.io.period = 0;
  EXPECT_FALSE(validate_scheme(is, kIns, kOuts).ok());
}

TEST(Scheme, BufferNeedsPositiveCapacity) {
  ImplementationScheme is = example_is1(kIns, kOuts);
  is.io.buffer_size = 0;
  EXPECT_FALSE(validate_scheme(is, kIns, kOuts).ok());
}

TEST(Scheme, StagesMustFitPeriod) {
  ImplementationScheme is = example_is1(kIns, kOuts);
  is.io.read_stage_max = 60;
  is.io.compute_stage_max = 30;
  is.io.write_stage_max = 30;  // 120 > period 100
  SchemeValidation v = validate_scheme(is, kIns, kOuts);
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.to_string().find("schedulable"), std::string::npos);
}

TEST(Scheme, AperiodicIgnoresPeriod) {
  ImplementationScheme is = example_is1(kIns, kOuts);
  is.io.invocation = InvocationKind::kAperiodic;
  is.io.period = 0;
  EXPECT_TRUE(validate_scheme(is, kIns, kOuts).ok());
}

TEST(Scheme, UnknownLookupThrows) {
  ImplementationScheme is = example_is1(kIns, kOuts);
  EXPECT_THROW(is.input("Nope"), Error);
  EXPECT_THROW(is.output("Nope"), Error);
}

// Parameterized sweep over the full mechanism cross-product: validity must
// match the documented compatibility rules.
struct ComboCase {
  SignalType signal;
  ReadMechanism read;
  bool expect_valid;
};

class SchemeComboTest : public ::testing::TestWithParam<ComboCase> {};

TEST_P(SchemeComboTest, CompatibilityMatrix) {
  const ComboCase& c = GetParam();
  ImplementationScheme is = example_is1(kIns, kOuts);
  auto& spec = is.inputs["BolusReq"];
  spec.signal = c.signal;
  spec.read = c.read;
  spec.polling_interval = c.read == ReadMechanism::kPolling ? 20 : 0;
  spec.sustain_duration = c.signal == SignalType::kSustainedDuration ? 80 : 0;
  EXPECT_EQ(validate_scheme(is, kIns, kOuts).ok(), c.expect_valid);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SchemeComboTest,
    ::testing::Values(
        ComboCase{SignalType::kPulse, ReadMechanism::kInterrupt, true},
        ComboCase{SignalType::kPulse, ReadMechanism::kPolling, false},
        ComboCase{SignalType::kSustainedDuration, ReadMechanism::kInterrupt, true},
        ComboCase{SignalType::kSustainedDuration, ReadMechanism::kPolling, true},
        ComboCase{SignalType::kSustainedUntilRead, ReadMechanism::kInterrupt, true},
        ComboCase{SignalType::kSustainedUntilRead, ReadMechanism::kPolling, true}));

}  // namespace
}  // namespace psv::core
