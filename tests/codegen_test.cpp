// Tests for the generated-code runtime (StepProgram) and the C emitter.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/cemit.h"
#include "codegen/stepcode.h"
#include "gpca/pump_model.h"
#include "util/error.h"

namespace psv::codegen {
namespace {

using psv::Error;

// Timing-sensitive expectations below assume the 250ms window start.
gpca::PumpModelOptions pump_options() {
  gpca::PumpModelOptions opt;
  opt.start_min = 250;
  return opt;
}

ta::Network pump() { return gpca::build_pump_pim(pump_options()); }

constexpr std::int64_t kMs = 1000;  // microseconds per model millisecond

TEST(StepProgram, StartsAtInitialLocation) {
  ta::Network pim = pump();
  core::PimInfo info = gpca::pump_pim_info(pim);
  StepProgram code(pim, info);
  EXPECT_EQ(code.location(), "Idle");
  EXPECT_EQ(code.invocations(), 0);
}

TEST(StepProgram, ConsumesInputAndHoldsUntilGuard) {
  ta::Network pim = pump();
  core::PimInfo info = gpca::pump_pim_info(pim);
  StepProgram code(pim, info);

  StepResult r = code.step(100 * kMs, {"BolusReq"});
  EXPECT_EQ(code.location(), "BolusRequested");
  EXPECT_TRUE(r.outputs.empty()) << "start guard x>=250 cannot hold yet";
  EXPECT_EQ(r.transitions, 1);

  // Before the 250ms window opens: nothing.
  r = code.step(300 * kMs, {});
  EXPECT_TRUE(r.outputs.empty());
  EXPECT_EQ(code.location(), "BolusRequested");

  // First invocation past the window start fires the output.
  r = code.step(360 * kMs, {});
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_EQ(r.outputs[0], "StartInfusion");
  EXPECT_EQ(code.location(), "Infusing");
}

TEST(StepProgram, DiscardsUnusableInput) {
  ta::Network pim = pump();
  core::PimInfo info = gpca::pump_pim_info(pim);
  StepProgram code(pim, info);
  // EmptySyringe in Idle matches no edge: read and discarded.
  StepResult r = code.step(0, {"EmptySyringe"});
  ASSERT_EQ(r.discarded.size(), 1u);
  EXPECT_EQ(r.discarded[0], "EmptySyringe");
  EXPECT_EQ(code.location(), "Idle");
}

TEST(StepProgram, FullBolusCycle) {
  ta::Network pim = pump();
  core::PimInfo info = gpca::pump_pim_info(pim);
  StepProgram code(pim, info);

  code.step(0, {"BolusReq"});
  StepResult start = code.step(260 * kMs, {});
  ASSERT_EQ(start.outputs.size(), 1u);
  EXPECT_EQ(start.outputs[0], "StartInfusion");

  // Empty syringe during infusion -> stop, then alarm.
  StepResult stop = code.step(400 * kMs, {"EmptySyringe"});
  EXPECT_EQ(code.location(), "Emptying");
  EXPECT_TRUE(stop.outputs.empty()) << "stop guard x>=50 not yet";

  StepResult stopped = code.step(460 * kMs, {});
  ASSERT_EQ(stopped.outputs.size(), 2u) << "stop then alarm chain in one invocation window";
  EXPECT_EQ(stopped.outputs[0], "StopInfusion");
  EXPECT_EQ(stopped.outputs[1], "Alarm");
  EXPECT_EQ(code.location(), "Idle");
}

TEST(StepProgram, NaturalStopAfterInfusionWindow) {
  ta::Network pim = pump();
  core::PimInfo info = gpca::pump_pim_info(pim);
  StepProgram code(pim, info);
  code.step(0, {"BolusReq"});
  code.step(260 * kMs, {});  // start infusion at t=260
  // Natural stop fires once x >= infusion_min (800) after the start.
  StepResult r = code.step(1000 * kMs, {});
  EXPECT_TRUE(r.outputs.empty());
  r = code.step(1100 * kMs, {});
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_EQ(r.outputs[0], "StopInfusion");
}

TEST(StepProgram, ResetRestoresInitialState) {
  ta::Network pim = pump();
  core::PimInfo info = gpca::pump_pim_info(pim);
  StepProgram code(pim, info);
  code.step(0, {"BolusReq"});
  code.reset(500 * kMs);
  EXPECT_EQ(code.location(), "Idle");
  // Clock restarted at reset time: guard x>=250 counts from 500ms.
  code.step(600 * kMs, {"BolusReq"});
  StepResult r = code.step(700 * kMs, {});
  EXPECT_TRUE(r.outputs.empty());
  r = code.step(860 * kMs, {});
  ASSERT_EQ(r.outputs.size(), 1u);
}

TEST(StepProgram, ClockValueQuery) {
  ta::Network pim = pump();
  core::PimInfo info = gpca::pump_pim_info(pim);
  StepProgram code(pim, info);
  code.step(100 * kMs, {"BolusReq"});  // resets x
  EXPECT_EQ(code.clock_value_us("x", 150 * kMs), 50 * kMs);
  EXPECT_THROW(code.clock_value_us("nope", 0), Error);
}

TEST(StepProgram, InvocationCounter) {
  ta::Network pim = pump();
  core::PimInfo info = gpca::pump_pim_info(pim);
  StepProgram code(pim, info);
  for (int k = 0; k < 5; ++k) code.step(k * 100 * kMs, {});
  EXPECT_EQ(code.invocations(), 5);
}

TEST(CEmit, ContainsInterfaceAndSemantics) {
  ta::Network pim = pump();
  core::PimInfo info = gpca::pump_pim_info(pim);
  CEmitOptions opts;
  opts.prefix = "gpca";
  const std::string c = emit_c(pim, info, opts);
  EXPECT_NE(c.find("gpca_state_t"), std::string::npos);
  EXPECT_NE(c.find("gpca_init"), std::string::npos);
  EXPECT_NE(c.find("gpca_step"), std::string::npos);
  EXPECT_NE(c.find("gpca_IN_BolusReq"), std::string::npos);
  EXPECT_NE(c.find("gpca_OUT_StartInfusion"), std::string::npos);
  EXPECT_NE(c.find("gpca_LOC_Infusing"), std::string::npos);
  // 250ms guard scaled to microseconds.
  EXPECT_NE(c.find("250000LL"), std::string::npos);
}

TEST(CEmit, EmittedCodeCompiles) {
  ta::Network pim = pump();
  core::PimInfo info = gpca::pump_pim_info(pim);
  CEmitOptions opts;
  opts.emit_demo_main = true;
  const std::string c = emit_c(pim, info, opts);

  const std::string path = ::testing::TempDir() + "psv_emitted.c";
  std::ofstream out(path);
  out << c;
  out.close();

  if (std::system("cc --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "no C compiler available";
  const std::string cmd = "cc -std=c99 -Wall -Werror -fsyntax-only " + path + " 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << "emitted C failed to compile";
}

TEST(CEmit, DemoMainOptional) {
  ta::Network pim = pump();
  core::PimInfo info = gpca::pump_pim_info(pim);
  EXPECT_EQ(emit_c(pim, info).find("int main"), std::string::npos);
  CEmitOptions opts;
  opts.emit_demo_main = true;
  EXPECT_NE(emit_c(pim, info, opts).find("int main"), std::string::npos);
}

}  // namespace
}  // namespace psv::codegen
