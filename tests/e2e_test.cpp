// End-to-end integration test: the complete Table-I pipeline (PIM
// verification -> transformation -> constraints -> bounds -> simulation)
// on a time-scaled pump so the whole flow runs in seconds.
//
// The scaled model divides every pump constant by ~4; all of Table I's
// structural claims must survive the scaling.
#include <gtest/gtest.h>

#include "core/framework.h"
#include "gpca/pump_model.h"
#include "sim/runner.h"

namespace psv {
namespace {

gpca::PumpModelOptions scaled_pump() {
  gpca::PumpModelOptions opt;
  opt.include_empty_syringe = false;
  opt.start_min = 37;
  opt.start_deadline = 125;
  opt.infusion_min = 200;
  opt.infusion_max = 300;
  opt.request_gap_min = 100;
  return opt;
}

core::ImplementationScheme scaled_scheme(const gpca::PumpModelOptions& opt) {
  core::ImplementationScheme is = gpca::board_scheme(opt);
  is.inputs.at("BolusReq").polling_interval = 60;
  is.inputs.at("BolusReq").delay_min = 2;
  is.inputs.at("BolusReq").delay_max = 10;
  is.io.period = 50;
  is.io.read_stage_max = 2;
  is.io.compute_stage_max = 2;
  is.io.write_stage_max = 2;
  is.outputs.at("StartInfusion").delay_min = 25;
  is.outputs.at("StartInfusion").delay_max = 110;
  is.outputs.at("StopInfusion").delay_min = 2;
  is.outputs.at("StopInfusion").delay_max = 12;
  return is;
}

TEST(EndToEnd, ScaledTable1Pipeline) {
  const gpca::PumpModelOptions opt = scaled_pump();
  const ta::Network pim = gpca::build_pump_pim(opt);
  const core::PimInfo info = gpca::pump_pim_info(pim);
  const core::TimingRequirement req = gpca::req1(opt);  // 125ms deadline
  const core::ImplementationScheme scheme = scaled_scheme(opt);

  core::FrameworkOptions options;
  options.search_limit = 10'000;
  const core::FrameworkResult result = core::run_framework(pim, info, scheme, req, options);

  // [1] the PIM meets REQ1 with the exact scaled bound.
  EXPECT_TRUE(result.pim.holds);
  EXPECT_EQ(result.pim.max_delay, 125);

  // [3] constraints C1-C4.
  EXPECT_TRUE(result.constraints.all_hold()) << result.constraints.to_string();

  // [4] Lemma 1: poll(60) + processing(10) + period(50) + read stage(2).
  ASSERT_EQ(result.bounds.input_delays.size(), 1u);
  EXPECT_EQ(result.bounds.input_delays[0].analytic, 122);
  EXPECT_TRUE(result.bounds.input_delays[0].verified_bounded);
  EXPECT_EQ(result.bounds.input_delays[0].verified, 122) << "Lemma 1 is tight on this scheme";
  // Lemma 2: 122 + 110 + 125.
  EXPECT_EQ(result.bounds.lemma2_total, 357);
  EXPECT_TRUE(result.bounds.verified_mc_bounded);
  EXPECT_LE(result.bounds.verified_mc_delay, 357);
  EXPECT_GT(result.bounds.verified_mc_delay, 125) << "platform must add delay";

  // [5] the paper's conclusion survives scaling.
  EXPECT_FALSE(result.psm_meets_original);
  EXPECT_TRUE(result.psm_meets_relaxed);

  // Measured side: every simulated delay below every verified bound.
  sim::MeasurementConfig config;
  config.scenarios = 30;
  config.seed = 11;
  config.phase_window_ms = 500;
  config.horizon_ms = 5'000;
  const sim::MeasurementSummary measured =
      sim::measure_requirement(pim, info, scheme, req, config);
  EXPECT_EQ(measured.incomplete, 0);
  EXPECT_EQ(measured.buffer_overflows, 0);
  EXPECT_EQ(measured.missed_inputs, 0);
  EXPECT_LE(measured.mi.max, static_cast<double>(result.bounds.input_delays[0].verified));
  EXPECT_LE(measured.mc.max, static_cast<double>(result.bounds.verified_mc_delay))
      << "simulation must respect the exact model-checked bound";
  EXPECT_GT(measured.violations(125.0), config.scenarios / 2)
      << "most scenarios must violate the original bound";

  // Conformance sweep: the executable platform (generated code + devices)
  // never exceeds the model-checked bounds, for any seed.
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull, 99999ull}) {
    sim::MeasurementConfig sweep;
    sweep.scenarios = 10;
    sweep.seed = seed;
    sweep.phase_window_ms = 500;
    sweep.horizon_ms = 5'000;
    const sim::MeasurementSummary sample =
        sim::measure_requirement(pim, info, scheme, req, sweep);
    EXPECT_LE(sample.mc.max, static_cast<double>(result.bounds.verified_mc_delay))
        << "seed " << seed;
    EXPECT_LE(sample.mi.max, static_cast<double>(result.bounds.input_delays[0].verified))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace psv
