// Tests for the GPCA infusion-pump case study (§II-A, §VI).
#include "gpca/pump_model.h"

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "mc/query.h"
#include "mc/reach.h"
#include "ta/validate.h"
#include "util/error.h"

namespace psv::gpca {
namespace {

using psv::Error;

TEST(PumpModel, FullModelStructure) {
  ta::Network pim = build_pump_pim();
  EXPECT_NO_THROW(ta::validate_or_throw(pim));
  core::PimInfo info = pump_pim_info(pim);
  EXPECT_EQ(info.inputs, (std::vector<std::string>{"BolusReq", "EmptySyringe"}));
  EXPECT_EQ(info.outputs,
            (std::vector<std::string>{"StartInfusion", "StopInfusion", "Alarm"}));
}

TEST(PumpModel, ReducedModelStructure) {
  PumpModelOptions opt;
  opt.include_empty_syringe = false;
  ta::Network pim = build_pump_pim(opt);
  core::PimInfo info = pump_pim_info(pim);
  EXPECT_EQ(info.inputs, (std::vector<std::string>{"BolusReq"}));
  EXPECT_EQ(info.outputs, (std::vector<std::string>{"StartInfusion", "StopInfusion"}));
}

TEST(PumpModel, BadOptionsRejected) {
  PumpModelOptions opt;
  opt.start_min = 600;  // > deadline 500
  EXPECT_THROW(build_pump_pim(opt), Error);
}

TEST(PumpModel, Req1HoldsOnPimWithExactBound) {
  PumpModelOptions opt;
  opt.include_empty_syringe = false;  // REQ1 only needs the bolus path
  ta::Network pim = build_pump_pim(opt);
  core::PimInfo info = pump_pim_info(pim);
  core::PimVerification v = core::verify_pim_requirement(pim, info, req1(opt), 100000);
  EXPECT_TRUE(v.holds);
  EXPECT_TRUE(v.bounded);
  EXPECT_EQ(v.max_delay, 500) << "Fig. 1 PIM: infusion always starts within exactly 500ms";
}

TEST(PumpModel, Req1HoldsOnFullPim) {
  ta::Network pim = build_pump_pim();
  core::PimInfo info = pump_pim_info(pim);
  core::PimVerification v = core::verify_pim_requirement(pim, info, req1(), 100000);
  EXPECT_TRUE(v.holds);
  EXPECT_EQ(v.max_delay, 500);
}

TEST(PumpModel, PimIsDeadlockFree) {
  ta::Network pim = build_pump_pim();
  mc::Reachability engine(pim, mc::StateFormula{});
  mc::DeadlockResult r = engine.find_deadlock();
  EXPECT_FALSE(r.found) << r.trace.to_string();
}

TEST(PumpModel, InfusionCycleReachable) {
  ta::Network pim = build_pump_pim();
  EXPECT_TRUE(mc::reachable(pim, mc::at(pim, "M", "Infusing")).reachable);
  EXPECT_TRUE(mc::reachable(pim, mc::at(pim, "M", "Alarming")).reachable);
}

TEST(BoardScheme, ValidAgainstPump) {
  ta::Network pim = build_pump_pim();
  core::PimInfo info = pump_pim_info(pim);
  core::ImplementationScheme is = board_scheme();
  EXPECT_TRUE(core::validate_scheme(is, info.inputs, info.outputs).ok());
}

TEST(BoardScheme, ReproducesTable1AnalyticBounds) {
  // DESIGN.md parameter split: the Lemma-1 bounds must reproduce the
  // paper's verified Input-Delay (490ms) and Output-Delay (440ms), and
  // Lemma 2 must give 490 + 440 + 500 = 1430ms.
  core::ImplementationScheme is = board_scheme();
  EXPECT_EQ(core::analytic_input_delay_bound(is, "BolusReq"), 490);
  EXPECT_EQ(core::analytic_output_delay_bound(is, "StartInfusion"), 440);
}

TEST(BoardScheme, PollsTheBolusButton) {
  core::ImplementationScheme is = board_scheme();
  EXPECT_EQ(is.input("BolusReq").read, core::ReadMechanism::kPolling);
  EXPECT_EQ(is.input("BolusReq").signal, core::SignalType::kSustainedUntilRead);
  // The drop sensor keeps IS1's pulse+interrupt mechanism.
  EXPECT_EQ(is.input("EmptySyringe").read, core::ReadMechanism::kInterrupt);
  EXPECT_EQ(is.input("EmptySyringe").signal, core::SignalType::kPulse);
}

TEST(Is1Scheme, MatchesPaperExample1) {
  core::ImplementationScheme is = is1_scheme();
  EXPECT_EQ(is.input("BolusReq").delay_min, 1);
  EXPECT_EQ(is.input("BolusReq").delay_max, 3);
  EXPECT_EQ(is.io.period, 100);
  EXPECT_EQ(is.io.buffer_size, 5);
  EXPECT_EQ(is.io.read_policy, core::ReadPolicy::kReadAll);
  ta::Network pim = build_pump_pim();
  core::PimInfo info = pump_pim_info(pim);
  EXPECT_TRUE(core::validate_scheme(is, info.inputs, info.outputs).ok());
}

TEST(PumpModel, Req2HoldsOnPim) {
  // REQ2: infusion stops within 600ms of an empty-syringe signal. In the
  // PIM the stop fires within [stop_min, stop_max] = [50, 300] of the
  // (synchronous) detection, so the exact bound is stop_max.
  ta::Network pim = build_pump_pim();
  core::PimInfo info = pump_pim_info(pim);
  core::PimVerification v = core::verify_pim_requirement(pim, info, req2_stop_on_empty(), 10000);
  EXPECT_TRUE(v.holds);
  EXPECT_TRUE(v.bounded);
  EXPECT_EQ(v.max_delay, 300);
}

TEST(BoardCalibration, ShapesWithinSpec) {
  sim::SimCalibration cal = board_calibration();
  const sim::DelayCalibration& motor = cal.output("StartInfusion");
  EXPECT_LE(motor.observed_spread, 1.0);
  EXPECT_GT(motor.observed_spread, 0.0);
  // Unknown names fall back to defaults.
  const sim::DelayCalibration& other = cal.output("NoSuchOutput");
  EXPECT_DOUBLE_EQ(other.observed_spread, cal.fallback.observed_spread);
}

TEST(Requirements, Definitions) {
  EXPECT_EQ(req1().name, "REQ1");
  EXPECT_EQ(req1().input, "BolusReq");
  EXPECT_EQ(req1().output, "StartInfusion");
  EXPECT_EQ(req1().bound_ms, 500);
  EXPECT_EQ(req2_stop_on_empty().input, "EmptySyringe");
  EXPECT_EQ(req2_stop_on_empty().output, "StopInfusion");
}

}  // namespace
}  // namespace psv::gpca
