// The shared typed flag registry (util/cli.h) used by psv_verify and
// psv_serve: typed parsing, positionals, switches, custom flags, env
// fallbacks, error classification (kParse), and --help generation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "util/cli.h"
#include "util/error.h"

namespace psv {
namespace {

std::vector<std::string> parse(cli::Parser& parser, std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) argv.push_back(arg.data());
  return parser.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliParser, TypedFlagsAndPositionals) {
  std::string dir = "default";
  int scenarios = 0;
  std::int64_t limit = 1'000'000;
  std::uint64_t seed = 2015;
  unsigned jobs = 0;
  bool flag = false;
  cli::Parser parser("tool", "usage: tool [options] FILES...");
  parser.flag("--dir", &dir, "DIR", "a directory");
  parser.flag("--sim", &scenarios, "N", "scenario count");
  parser.flag("--limit", &limit, "MS", "a ceiling");
  parser.flag("--seed", &seed, "S", "a seed");
  parser.flag("--jobs", &jobs, "N", "worker threads");
  parser.flag("--verbose", &flag, "a switch");

  const std::vector<std::string> positional = parse(
      parser, {"a.psv", "--dir", "/tmp/x", "--sim", "12", "b.pss", "--limit", "-5", "--seed",
               "99", "--jobs", "4", "--verbose", "REQ: a -> b within 10"});
  EXPECT_EQ(positional, (std::vector<std::string>{"a.psv", "b.pss", "REQ: a -> b within 10"}));
  EXPECT_EQ(dir, "/tmp/x");
  EXPECT_EQ(scenarios, 12);
  EXPECT_EQ(limit, -5);
  EXPECT_EQ(seed, 99u);
  EXPECT_EQ(jobs, 4u);
  EXPECT_TRUE(flag);
  EXPECT_FALSE(parser.help_requested());
}

TEST(CliParser, AbsentFlagsKeepDefaults) {
  int value = 42;
  cli::Parser parser("tool", "usage");
  parser.flag("--value", &value, "N", "a number");
  EXPECT_TRUE(parse(parser, {}).empty());
  EXPECT_EQ(value, 42);
}

TEST(CliParser, NegativeNumbersArePositionals) {
  // "-5" must not be treated as an unknown flag (requirement texts and
  // numeric arguments may lead with a minus).
  int value = 0;
  cli::Parser parser("tool", "usage");
  parser.flag("--value", &value, "N", "a number");
  const std::vector<std::string> positional = parse(parser, {"-5", "--value", "-7"});
  EXPECT_EQ(positional, std::vector<std::string>{"-5"});
  EXPECT_EQ(value, -7);
}

TEST(CliParser, ParseFailuresAreTypedErrors) {
  int value = 0;
  unsigned count = 0;
  cli::Parser parser("tool", "usage");
  parser.flag("--value", &value, "N", "a number");
  parser.flag("--count", &count, "N", "a count");

  const auto expect_parse_error = [&](std::vector<std::string> args) {
    try {
      parse(parser, std::move(args));
      FAIL() << "expected psv::Error";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kParse);
    }
  };
  expect_parse_error({"--unknown"});
  expect_parse_error({"--value"});           // missing value
  expect_parse_error({"--value", "abc"});    // not a number
  expect_parse_error({"--value", "12x"});    // trailing garbage
  expect_parse_error({"--count", "-3"});     // negative for unsigned
  expect_parse_error({"--value", "99999999999999999999"});  // overflow
}

TEST(CliParser, CustomFlagValidation) {
  std::string engine = "sweep";
  cli::Parser parser("tool", "usage");
  parser.flag_custom("--engine", "E", "engine choice", [&engine](const std::string& value) {
    PSV_REQUIRE_AS(ErrorCode::kParse, value == "sweep" || value == "probe", "bad engine");
    engine = value;
  });
  parse(parser, {"--engine", "probe"});
  EXPECT_EQ(engine, "probe");
  EXPECT_THROW(parse(parser, {"--engine", "warp"}), Error);
}

TEST(CliParser, EnvFallbackAppliesOnlyWhenFlagAbsent) {
  ::setenv("PSV_CLI_TEST_DIR", "/from/env", 1);
  std::string dir;
  {
    cli::Parser parser("tool", "usage");
    parser.flag("--dir", &dir, "DIR", "a directory");
    parser.env_fallback("--dir", "PSV_CLI_TEST_DIR");
    parse(parser, {});
    EXPECT_EQ(dir, "/from/env");
  }
  {
    dir.clear();
    cli::Parser parser("tool", "usage");
    parser.flag("--dir", &dir, "DIR", "a directory");
    parser.env_fallback("--dir", "PSV_CLI_TEST_DIR");
    parse(parser, {"--dir", "/from/flag"});
    EXPECT_EQ(dir, "/from/flag");
  }
  ::unsetenv("PSV_CLI_TEST_DIR");
}

TEST(CliParser, GeneratedHelp) {
  std::string dir;
  bool quiet = false;
  cli::Parser parser("tool", "usage: tool [options]");
  parser.flag("--dir", &dir, "DIR", "first line\nsecond line");
  parser.flag("--quiet", &quiet, "a switch");
  parser.env_fallback("--dir", "PSV_CLI_TEST_DIR");
  parser.epilog("Exit status: 0 on success.");

  EXPECT_TRUE(parse(parser, {"--help"}).empty());
  EXPECT_TRUE(parser.help_requested());
  const std::string help = parser.help();
  EXPECT_NE(help.find("usage: tool [options]"), std::string::npos);
  EXPECT_NE(help.find("--dir DIR"), std::string::npos);
  EXPECT_NE(help.find("first line"), std::string::npos);
  EXPECT_NE(help.find("second line"), std::string::npos);
  EXPECT_NE(help.find("--quiet"), std::string::npos);
  EXPECT_NE(help.find("$PSV_CLI_TEST_DIR"), std::string::npos);
  EXPECT_NE(help.find("Exit status: 0 on success."), std::string::npos);
}

}  // namespace
}  // namespace psv
