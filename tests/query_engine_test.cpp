// Differential coverage for the two bound-query engines and the shared
// verification sessions.
//
// The sweep engine (one full-space exploration, widen-and-refine) and the
// probe engine (gallop + binary search) must produce bit-identical bounds
// on every model: the paper's pump case study (Table-I 490/440), the
// quickstart model, and a seeded family of randomized request/response
// networks. Session reuse must be invisible: batched queries, one-off
// queries and repeated (cached) queries all agree.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/framework.h"
#include "core/pim.h"
#include "core/transform.h"
#include "gpca/pump_model.h"
#include "lang/model_parser.h"
#include "lang/scheme_parser.h"
#include "mc/query.h"
#include "mc/session.h"
#include "model_paths.h"
#include "util/rng.h"

namespace psv {
namespace {

using namespace psv::ta;
using psv::testing::find_model_dir;
using psv::testing::read_file;

mc::ExploreOptions engine_opts(mc::QueryEngine engine, unsigned jobs) {
  mc::ExploreOptions opts;
  opts.engine = engine;
  opts.jobs = jobs;
  return opts;
}

void expect_same_answer(const mc::MaxClockResult& a, const mc::MaxClockResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.bounded, b.bounded) << label;
  EXPECT_EQ(a.bound, b.bound) << label;
  EXPECT_EQ(a.condition_unreachable, b.condition_unreachable) << label;
}

// --- Pump case study (Table I) ----------------------------------------------

TEST(QueryEngineDifferential, PumpTableIBoundsIdenticalAcrossEnginesAndJobs) {
  gpca::PumpModelOptions opt;
  opt.include_empty_syringe = false;  // keeps every exploration in seconds
  const Network pim = gpca::build_pump_pim(opt);
  const core::PimInfo info = gpca::pump_pim_info(pim);
  const core::PsmArtifacts psm = core::transform(pim, info, gpca::board_scheme(opt));
  const core::InputArtifacts& in = psm.input("BolusReq");
  const core::OutputArtifacts& out = psm.output("StartInfusion");

  std::vector<mc::MaxClockResult> in_results;
  std::vector<mc::MaxClockResult> out_results;
  for (const unsigned jobs : {1u, 8u}) {
    for (const mc::QueryEngine engine : {mc::QueryEngine::kSweep, mc::QueryEngine::kProbe}) {
      const mc::ExploreOptions opts = engine_opts(engine, jobs);
      in_results.push_back(mc::max_clock_value(psm.psm, mc::when(var_eq(in.pending, 1)),
                                               in.delay_clock, 100'000, opts, 490));
      out_results.push_back(mc::max_clock_value(psm.psm, mc::when(var_eq(out.pending, 1)),
                                                out.delay_clock, 100'000, opts, 440));
    }
  }
  for (std::size_t i = 1; i < in_results.size(); ++i) {
    expect_same_answer(in_results[0], in_results[i], "Input-Delay(BolusReq) run " +
                                                         std::to_string(i));
    expect_same_answer(out_results[0], out_results[i], "Output-Delay(StartInfusion) run " +
                                                           std::to_string(i));
  }
  ASSERT_TRUE(in_results[0].bounded);
  EXPECT_EQ(in_results[0].bound, 490) << "Table-I Input-Delay";
  ASSERT_TRUE(out_results[0].bounded);
  EXPECT_EQ(out_results[0].bound, 440) << "Table-I Output-Delay";
}

// --- Quickstart model -------------------------------------------------------

TEST(QueryEngineDifferential, QuickstartPipelineIdenticalAcrossEnginesAndJobs) {
  const std::string dir = find_model_dir();
  if (dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  const Network pim = lang::parse_model(read_file(dir + "quickstart.psv"));
  const core::PimInfo info = core::analyze_pim(pim);
  const core::ImplementationScheme scheme = lang::parse_scheme(read_file(dir + "fast.pss"));
  const core::TimingRequirement req{"QREQ", "Req", "Ack", 80};

  // Per engine: the rendered report embeds every verified bound and the
  // shared constraint-exploration statistics; string equality across thread
  // counts pins the whole pipeline outcome. Across engines the *bounds and
  // verdicts* are identical but the constraint details legitimately differ:
  // the sweep engine discharges the flags from the combined batch sweep
  // (probe-clock extrapolation constants included), the probe engine from a
  // dedicated flag sweep — so the reported state counts disagree.
  std::vector<core::FrameworkResult> results[2];
  for (const unsigned jobs : {1u, 8u}) {
    for (const mc::QueryEngine engine : {mc::QueryEngine::kSweep, mc::QueryEngine::kProbe}) {
      core::FrameworkOptions options;
      options.explore = engine_opts(engine, jobs);
      results[engine == mc::QueryEngine::kProbe].push_back(
          core::run_framework(pim, info, scheme, req, options));
    }
  }
  for (const auto& engine_results : results)
    for (std::size_t i = 1; i < engine_results.size(); ++i)
      EXPECT_EQ(engine_results[0].summary(), engine_results[i].summary()) << "jobs run " << i;
  for (const core::FrameworkResult& probe_result : results[1]) {
    const core::FrameworkResult& sweep_result = results[0][0];
    EXPECT_EQ(sweep_result.bounds.to_string(), probe_result.bounds.to_string());
    EXPECT_EQ(sweep_result.pim.max_delay, probe_result.pim.max_delay);
    EXPECT_EQ(sweep_result.psm_meets_original, probe_result.psm_meets_original);
    EXPECT_EQ(sweep_result.psm_meets_relaxed, probe_result.psm_meets_relaxed);
    ASSERT_EQ(sweep_result.constraints.checks.size(), probe_result.constraints.checks.size());
    for (std::size_t c = 0; c < sweep_result.constraints.checks.size(); ++c)
      EXPECT_EQ(sweep_result.constraints.checks[c].holds,
                probe_result.constraints.checks[c].holds)
          << sweep_result.constraints.checks[c].name;
  }
  EXPECT_EQ(results[0][0].bounds.input_delays.at(0).verified, 14);
  EXPECT_EQ(results[0][0].bounds.output_delays.at(0).verified, 3);
  EXPECT_EQ(results[0][0].bounds.lemma2_total, 97);
}

// --- Seeded randomized networks ---------------------------------------------

// A randomized request/response network: ENV issues req (resetting probe
// clock t) and awaits resp; M works for a seeded window [lo, hi] (invariant
// x <= hi), optionally unbounded (no invariant, time diverges at Work); a
// third automaton interleaves on its own clock to widen the product. The
// exact maximum of t at ENV.Await is hi (delivery is immediate), or
// unbounded without the invariant.
// `hi_delta`/`period_delta` perturb ONE seeded timing constant (clamped so
// the net stays live) without touching the rng sequence or the structure:
// the perturbed net is skeleton-equal to the unperturbed one — the shape the
// incremental-exploration warm start targets.
Network random_reqresp_net(std::uint64_t seed, bool bounded, std::int32_t& expected_hi,
                           std::int32_t hi_delta = 0, std::int32_t period_delta = 0) {
  Rng rng(seed);
  Network net("rand" + std::to_string(seed));
  const ClockId t = net.add_clock("t");
  const ClockId x = net.add_clock("x");
  const ClockId z = net.add_clock("z");
  const ChanId req = net.add_channel("req", ChanKind::kBinary);
  const ChanId resp = net.add_channel("resp", ChanKind::kBinary);
  const auto lo = static_cast<std::int32_t>(rng.uniform_int(1, 40));
  auto hi = static_cast<std::int32_t>(lo + rng.uniform_int(1, 400));
  hi = hi + hi_delta < lo ? lo : hi + hi_delta;
  expected_hi = hi;

  Automaton env("ENV");
  const LocId idle = env.add_location("Idle");
  const LocId await = env.add_location("Await");
  Edge send;
  send.src = idle;
  send.dst = await;
  send.sync = SyncLabel::send(req);
  send.update.resets = {{t, 0}};
  env.add_edge(send);
  Edge recv;
  recv.src = await;
  recv.dst = idle;
  recv.sync = SyncLabel::receive(resp);
  env.add_edge(recv);
  net.add_automaton(std::move(env));

  Automaton m("M");
  const LocId midle = m.add_location("Idle");
  std::vector<ClockConstraint> inv;
  if (bounded) inv.push_back(cc_le(x, hi));
  const LocId work = m.add_location("Work", LocKind::kNormal, inv);
  Edge take;
  take.src = midle;
  take.dst = work;
  take.sync = SyncLabel::receive(req);
  take.update.resets = {{x, 0}};
  m.add_edge(take);
  Edge give;
  give.src = work;
  give.dst = midle;
  give.guard.clocks = {cc_ge(x, lo)};
  give.sync = SyncLabel::send(resp);
  m.add_edge(give);
  net.add_automaton(std::move(m));

  Automaton w("W");
  const auto period = static_cast<std::int32_t>(rng.uniform_int(3, 25)) + period_delta;
  const LocId w0 = w.add_location("W0", LocKind::kNormal, {cc_le(z, period)});
  const LocId w1 = w.add_location("W1", LocKind::kNormal, {cc_le(z, period)});
  Edge tick;
  tick.src = w0;
  tick.dst = w1;
  tick.guard.clocks = {cc_ge(z, 1)};
  tick.update.resets = {{z, 0}};
  w.add_edge(tick);
  Edge tock = tick;
  tock.src = w1;
  tock.dst = w0;
  w.add_edge(tock);
  net.add_automaton(std::move(w));
  return net;
}

TEST(QueryEngineDifferential, SeededRandomizedNetworksAgree) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const bool bounded = seed % 3 != 0;  // every third net is unbounded
    std::int32_t hi = 0;
    const Network net = random_reqresp_net(seed, bounded, hi);
    const mc::StateFormula pred = mc::at(net, "ENV", "Await");
    // Hints straddling the answer exercise round-0 resolution, the
    // widen-and-refine loop, and the probe gallop from both sides.
    for (const std::int64_t hint : {std::int64_t{1}, std::int64_t{hi}, std::int64_t{5000}}) {
      const mc::MaxClockResult sweep = mc::max_clock_value(
          net, pred, 0, 10'000, engine_opts(mc::QueryEngine::kSweep, 1), hint);
      const mc::MaxClockResult probe = mc::max_clock_value(
          net, pred, 0, 10'000, engine_opts(mc::QueryEngine::kProbe, 1), hint);
      expect_same_answer(sweep, probe,
                         "seed " + std::to_string(seed) + " hint " + std::to_string(hint));
      if (bounded) {
        ASSERT_TRUE(sweep.bounded) << "seed " << seed;
        EXPECT_EQ(sweep.bound, hi) << "seed " << seed;
      } else {
        EXPECT_FALSE(sweep.bounded) << "seed " << seed;
      }
    }
  }
}

// --- Slack & ranking property harness ----------------------------------------

// Property, over the seeded randomized family: the ranked critical-trace
// payload (values, rendered traces, witness constants) and the slack report
// derived from it are BIT-IDENTICAL at every thread count, rankings are
// monotonically ordered with ranked[0] == bound, and unbounded/unreachable
// results carry no ranked payload. Both engines agree on every bound.
TEST(SlackRankingProperty, SeededNetworksRankingsBitIdenticalAcrossJobs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const bool bounded = seed % 3 != 0;  // every third net is unbounded
    std::int32_t hi = 0;
    const Network net = random_reqresp_net(seed, bounded, hi);
    const mc::StateFormula pred = mc::at(net, "ENV", "Await");
    std::vector<mc::BoundQuery> batch(1);
    batch[0] = {pred, 0, 10'000, /*hint=*/64, /*top_k=*/4};
    // One synthetic requirement 7ms above the seeded maximum: bounded nets
    // must report slack == 7 exactly.
    const std::vector<core::TimingRequirement> reqs = {
        {"R" + std::to_string(seed), "req", "resp", std::int64_t{hi} + 7}};

    std::int64_t first_bound = -1;
    for (const mc::QueryEngine engine : {mc::QueryEngine::kSweep, mc::QueryEngine::kProbe}) {
      std::vector<std::string> payloads;
      std::vector<std::string> slacks;
      for (const unsigned jobs : {1u, 2u, 8u}) {
        const std::string label = "seed " + std::to_string(seed) + " engine " +
                                  (engine == mc::QueryEngine::kSweep ? "sweep" : "probe") +
                                  " jobs " + std::to_string(jobs);
        const std::vector<mc::MaxClockResult> results =
            mc::max_clock_values(net, batch, engine_opts(engine, jobs));
        const mc::MaxClockResult& r = results.at(0);
        EXPECT_EQ(r.bounded, bounded) << label;
        if (bounded) {
          EXPECT_EQ(r.bound, hi) << label;
          ASSERT_FALSE(r.ranked.empty()) << label;
          EXPECT_EQ(r.ranked.front().value, r.bound) << label;
        } else {
          EXPECT_TRUE(r.ranked.empty()) << label << ": unbounded results carry no ranking";
        }
        for (std::size_t i = 1; i < r.ranked.size(); ++i)
          EXPECT_LE(r.ranked[i].value, r.ranked[i - 1].value) << label << " ranked[" << i << "]";

        std::ostringstream os;
        os << r.bounded << ' ' << r.bound << ' ' << r.condition_unreachable << '\n';
        for (const mc::RankedWitness& w : r.ranked)
          os << w.value << '\n' << w.trace.to_string() << '\n';
        for (const std::int32_t c : r.witness_consts) os << c << ' ';
        payloads.push_back(os.str());

        const core::SlackReport report = core::compute_slack_report(reqs, results, 10'000);
        if (bounded) {
          EXPECT_EQ(report.requirements.at(0).slack_ms, 7) << label;
        }
        slacks.push_back(report.to_string(/*top_k=*/4));

        if (first_bound < 0 && r.bounded) first_bound = r.bound;
        if (r.bounded) {
          EXPECT_EQ(r.bound, first_bound) << label << ": engines disagree";
        }
      }
      for (std::size_t i = 1; i < payloads.size(); ++i) {
        EXPECT_EQ(payloads[0], payloads[i])
            << "seed " << seed << ": ranked payload differs across thread counts";
        EXPECT_EQ(slacks[0], slacks[i])
            << "seed " << seed << ": slack report differs across thread counts";
      }
    }
  }
}

// --- Session reuse -----------------------------------------------------------

TEST(SessionReuse, BatchedAndOneOffAndCachedQueriesAgree) {
  gpca::PumpModelOptions opt;
  opt.include_empty_syringe = false;
  const Network pim = gpca::build_pump_pim(opt);
  const core::PimInfo info = gpca::pump_pim_info(pim);
  const core::PsmArtifacts psm = core::transform(pim, info, gpca::board_scheme(opt));

  std::vector<mc::BoundQuery> batch;
  for (const core::InputArtifacts& in : psm.inputs) {
    mc::BoundQuery q;
    q.pred = mc::when(var_eq(in.pending, 1));
    q.clock = in.delay_clock;
    q.limit = 100'000;
    q.hint = 490;
    batch.push_back(std::move(q));
  }
  for (const core::OutputArtifacts& out : psm.outputs) {
    mc::BoundQuery q;
    q.pred = mc::when(var_eq(out.pending, 1));
    q.clock = out.delay_clock;
    q.limit = 100'000;
    q.hint = 440;
    batch.push_back(std::move(q));
  }
  ASSERT_GE(batch.size(), 3u);

  mc::VerificationSession session(psm.psm, {});
  const std::vector<mc::MaxClockResult> batched = session.max_clock_values(batch);
  const int explorations_after_batch = session.stats().explorations;
  EXPECT_EQ(explorations_after_batch, 1)
      << "the whole batch must be answered from one shared sweep";

  // One-off queries (fresh session each) give the same answers.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    mc::VerificationSession fresh(psm.psm, {});
    expect_same_answer(batched[i], fresh.max_clock_value(batch[i]),
                       "one-off query " + std::to_string(i));
  }

  // Re-asking the session is answered from the cache: same answers, no new
  // exploration.
  for (std::size_t i = 0; i < batch.size(); ++i)
    expect_same_answer(batched[i], session.max_clock_value(batch[i]),
                       "cached query " + std::to_string(i));
  EXPECT_EQ(session.stats().explorations, explorations_after_batch);
  EXPECT_GE(session.stats().cache_hits, static_cast<int>(batch.size()));
}

TEST(SessionReuse, RefinementWorkIsAccounted) {
  // Two sequential work phases with an intermediate reset of x: no single
  // clock difference bounds the probe clock t (max 400 = 2 phases x 200),
  // so a low hint abstracts t's upper bound away and forces the sweep
  // through the widen-and-refine loop, whose explorations must all land in
  // the session's totals (they feed --stats-json and bench_query_engine).
  Network net("twophase");
  const ClockId t = net.add_clock("t");
  const ClockId x = net.add_clock("x");
  const ChanId req = net.add_channel("req", ChanKind::kBinary);
  const ChanId resp = net.add_channel("resp", ChanKind::kBinary);
  Automaton env("ENV");
  const LocId idle = env.add_location("Idle");
  const LocId await = env.add_location("Await");
  Edge send;
  send.src = idle;
  send.dst = await;
  send.sync = SyncLabel::send(req);
  send.update.resets = {{t, 0}};
  env.add_edge(send);
  Edge recv;
  recv.src = await;
  recv.dst = idle;
  recv.sync = SyncLabel::receive(resp);
  env.add_edge(recv);
  net.add_automaton(std::move(env));
  Automaton m("M");
  const LocId midle = m.add_location("Idle");
  const LocId w1 = m.add_location("W1", LocKind::kNormal, {cc_le(x, 200)});
  const LocId w2 = m.add_location("W2", LocKind::kNormal, {cc_le(x, 200)});
  Edge take;
  take.src = midle;
  take.dst = w1;
  take.sync = SyncLabel::receive(req);
  take.update.resets = {{x, 0}};
  m.add_edge(take);
  Edge step;
  step.src = w1;
  step.dst = w2;
  step.guard.clocks = {cc_ge(x, 1)};
  step.update.resets = {{x, 0}};
  m.add_edge(step);
  Edge give;
  give.src = w2;
  give.dst = midle;
  give.guard.clocks = {cc_ge(x, 1)};
  give.sync = SyncLabel::send(resp);
  m.add_edge(give);
  net.add_automaton(std::move(m));

  mc::VerificationSession session(net, {});
  mc::BoundQuery q;
  q.pred = mc::at(net, "ENV", "Await");
  q.clock = t;
  q.limit = 50'000;
  q.hint = 1;
  const mc::MaxClockResult r = session.max_clock_value(q);
  ASSERT_TRUE(r.bounded);
  EXPECT_EQ(r.bound, 400);
  EXPECT_GT(r.probes, 1) << "hint 1 must trigger at least one refine round";
  EXPECT_EQ(session.stats().explorations, r.probes)
      << "single-query batch: session totals must equal the query's counted sweeps";
  EXPECT_EQ(session.stats().explore.states_explored, r.stats.states_explored);

  // The probe engine agrees from the same low hint.
  const mc::MaxClockResult probe = mc::max_clock_value(
      net, q.pred, t, q.limit, engine_opts(mc::QueryEngine::kProbe, 1), q.hint);
  ASSERT_TRUE(probe.bounded);
  EXPECT_EQ(probe.bound, 400);
}

TEST(SessionReuse, RepeatedFlagChecksShareOneExploration) {
  gpca::PumpModelOptions opt;
  opt.include_empty_syringe = false;
  const Network pim = gpca::build_pump_pim(opt);
  const core::PimInfo info = gpca::pump_pim_info(pim);
  const core::PsmArtifacts psm = core::transform(pim, info, gpca::board_scheme(opt));

  mc::VerificationSession session(psm.psm, {});
  const core::ConstraintReport first = core::check_constraints(session, psm);
  const int explorations = session.stats().explorations;
  EXPECT_EQ(explorations, 1) << "all C1-C4 flags and the deadlock search share one sweep";
  const core::ConstraintReport second = core::check_constraints(session, psm);
  EXPECT_EQ(session.stats().explorations, explorations) << "repeat must be served from cache";
  EXPECT_EQ(first.to_string(), second.to_string());
  EXPECT_TRUE(first.all_hold()) << first.to_string();
}

// --- Incremental exploration (warm start) ------------------------------------

// Property, over the seeded randomized family: adopt the unperturbed net's
// passed store into a session for a RANDOMLY single-edit-perturbed net
// (one timing constant raised, lowered, or a period stretched — the
// skeleton never changes) and the warm answers are bit-identical to a cold
// session's at every thread count and under both engines. The ancestor only
// accelerates the sweep engine; under the probe engine adoption must be an
// exact no-op. Upward edits must actually reuse or revalidate stored states
// — otherwise the warm start silently degraded to a cold run.
TEST(IncrementalExploration, SeededPerturbedNetsWarmMatchesColdAcrossEnginesAndJobs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::int32_t base_hi = 0;
    const Network base = random_reqresp_net(seed, /*bounded=*/true, base_hi);

    // One random single-constant edit: raise the work window, shrink it, or
    // stretch the interleaver period.
    Rng perturb_rng(seed * 977 + 13);
    const auto which = static_cast<int>(perturb_rng.uniform_int(0, 2));
    const auto d = static_cast<std::int32_t>(perturb_rng.uniform_int(1, 30));
    const std::int32_t hi_delta = which == 0 ? d : which == 1 ? -d : 0;
    const std::int32_t period_delta = which == 2 ? d : 0;
    std::int32_t hi = 0;
    const Network perturbed = random_reqresp_net(seed, true, hi, hi_delta, period_delta);
    ASSERT_EQ(ta::skeleton_digest(base), ta::skeleton_digest(perturbed))
        << "seed " << seed << ": a constant edit must not change the skeleton";

    // The ancestor: one captured sweep over the unperturbed net.
    mc::VerificationSession ancestor(base, engine_opts(mc::QueryEngine::kSweep, 1));
    mc::BoundQuery base_query{mc::at(base, "ENV", "Await"), 0, 10'000, /*hint=*/64};
    ancestor.max_clock_value(base_query);
    const std::shared_ptr<const mc::PassedStoreExport> store = ancestor.exported_store();
    ASSERT_NE(store, nullptr) << "seed " << seed << ": sweep session exported no store";

    const mc::BoundQuery query{mc::at(perturbed, "ENV", "Await"), 0, 10'000, /*hint=*/64};
    for (const mc::QueryEngine engine : {mc::QueryEngine::kSweep, mc::QueryEngine::kProbe}) {
      for (const unsigned jobs : {1u, 2u, 8u}) {
        const std::string label = "seed " + std::to_string(seed) + " edit " +
                                  std::to_string(which) + " engine " +
                                  (engine == mc::QueryEngine::kSweep ? "sweep" : "probe") +
                                  " jobs " + std::to_string(jobs);
        mc::VerificationSession cold(perturbed, engine_opts(engine, jobs));
        const mc::MaxClockResult cold_result = cold.max_clock_value(query);

        mc::VerificationSession warm(perturbed, engine_opts(engine, jobs));
        warm.adopt_ancestor(store);
        const mc::MaxClockResult warm_result = warm.max_clock_value(query);

        expect_same_answer(cold_result, warm_result, label);
        ASSERT_TRUE(warm_result.bounded) << label;
        EXPECT_EQ(warm_result.bound, hi) << label;
        if (engine == mc::QueryEngine::kSweep) {
          EXPECT_GT(warm.stats().warm_start_states_reused() + warm.stats().states_revalidated(),
                    0u)
              << label << ": adopted ancestor was never consulted";
        } else {
          EXPECT_EQ(warm.stats().warm_start_states_reused(), 0u)
              << label << ": the probe engine must ignore ancestors";
        }
      }
    }
  }
}

TEST(SessionReuse, SessionBackedPipelineMatchesLegacyPaths) {
  const std::string dir = find_model_dir();
  if (dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  const Network pim = lang::parse_model(read_file(dir + "quickstart.psv"));
  const core::PimInfo info = core::analyze_pim(pim);
  const core::ImplementationScheme scheme = lang::parse_scheme(read_file(dir + "fast.pss"));
  const core::PsmArtifacts psm = core::transform(pim, info, scheme);
  const core::TimingRequirement req{"QREQ", "Req", "Ack", 80};

  // Legacy convenience API (internal one-shot session)...
  const core::BoundAnalysis legacy = core::analyze_bounds(psm, 500, req, 100'000);
  // ...and an explicitly shared session: identical verified bounds.
  core::InstrumentedPsm instrumented = core::instrument_psm_for_requirement(psm, req);
  mc::VerificationSession session(std::move(instrumented.net), {});
  const core::BoundAnalysis shared =
      core::analyze_bounds(session, psm, instrumented.mc_probe, 500, req, 100'000);
  ASSERT_EQ(legacy.input_delays.size(), shared.input_delays.size());
  for (std::size_t i = 0; i < legacy.input_delays.size(); ++i)
    EXPECT_EQ(legacy.input_delays[i].verified, shared.input_delays[i].verified);
  ASSERT_EQ(legacy.output_delays.size(), shared.output_delays.size());
  for (std::size_t i = 0; i < legacy.output_delays.size(); ++i)
    EXPECT_EQ(legacy.output_delays[i].verified, shared.output_delays[i].verified);
  EXPECT_EQ(legacy.verified_mc_delay, shared.verified_mc_delay);
  EXPECT_EQ(legacy.lemma2_total, shared.lemma2_total);
}

}  // namespace
}  // namespace psv
