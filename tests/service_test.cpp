// The batched Verifier service (core/service.h): request/response shape,
// batch-vs-sequential agreement on the fast quickstart model, stage-1 and
// session sharing, scheme comparison, pooling, and thread-safety.
//
// The heavyweight pump equivalence proof (3-requirement batch bit-identical
// to three run_framework() calls with ONE PSM exploration) lives in
// verifier_test.cpp under the exhaustive label.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.h"
#include "core/service.h"
#include "lang/model_parser.h"
#include "lang/scheme_parser.h"
#include "model_paths.h"
#include "util/error.h"

namespace psv {
namespace {

using psv::testing::find_model_dir;
using psv::testing::read_file;

struct QuickstartFixture {
  ta::Network pim;
  core::PimInfo info;
  core::ImplementationScheme fast_scheme;
  core::ImplementationScheme late_scheme;
  bool ok = false;

  QuickstartFixture() {
    const std::string dir = find_model_dir();
    if (dir.empty()) return;
    pim = lang::parse_model(read_file(dir + "quickstart.psv"));
    info = core::analyze_pim(pim);
    fast_scheme = lang::parse_scheme(read_file(dir + "fast.pss"));
    late_scheme = lang::parse_scheme(read_file(dir + "late.pss"));
    ok = true;
  }
};

std::vector<core::TimingRequirement> quickstart_requirements() {
  return {{"QREQ", "Req", "Ack", 80},
          {"QTIGHT", "Req", "Ack", 40},
          {"QWIDE", "Req", "Ack", 300}};
}

TEST(VerifierService, BatchMatchesSequentialRunFramework) {
  QuickstartFixture fx;
  if (!fx.ok) GTEST_SKIP() << "example model files not found from test cwd";
  const std::vector<core::TimingRequirement> reqs = quickstart_requirements();

  core::Verifier verifier;
  core::VerifyRequest request;
  request.pim = fx.pim;
  request.info = fx.info;
  request.schemes = {fx.fast_scheme};
  request.requirements = reqs;
  const core::VerifyReport report = verifier.verify(request);

  ASSERT_EQ(report.schemes.size(), 1u);
  ASSERT_EQ(report.schemes.front().requirements.size(), reqs.size());

  // Bit-identical bounds and verdicts against independent single runs.
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    const core::FrameworkResult single =
        core::run_framework(fx.pim, fx.info, fx.fast_scheme, reqs[r]);
    const core::RequirementResult& batched = report.schemes.front().requirements[r];
    EXPECT_EQ(single.bounds.to_string(), batched.bounds.to_string()) << reqs[r].name;
    EXPECT_EQ(single.pim.max_delay, batched.pim.max_delay) << reqs[r].name;
    EXPECT_EQ(single.pim.holds, batched.pim.holds) << reqs[r].name;
    EXPECT_EQ(single.psm_meets_original, batched.psm_meets_original) << reqs[r].name;
    EXPECT_EQ(single.psm_meets_relaxed, batched.psm_meets_relaxed) << reqs[r].name;
    ASSERT_EQ(single.constraints.checks.size(),
              report.schemes.front().constraints.checks.size());
    for (std::size_t c = 0; c < single.constraints.checks.size(); ++c)
      EXPECT_EQ(single.constraints.checks[c].holds,
                report.schemes.front().constraints.checks[c].holds);
  }

  // The whole batch cost ONE PIM exploration and ONE PSM exploration
  // (stages 3-5 combined), not one pipeline per requirement.
  ASSERT_EQ(report.pim_stages.size(), 1u);
  EXPECT_EQ(report.pim_stages.front().explorations, 1);
  EXPECT_EQ(report.explorations_in("constraints") + report.explorations_in("bounds"), 1)
      << "constraints + bounds must share one combined sweep";
}

TEST(VerifierService, CandidateSchemesShareStageOneAndCompete) {
  QuickstartFixture fx;
  if (!fx.ok) GTEST_SKIP() << "example model files not found from test cwd";

  core::Verifier verifier;
  core::VerifyRequest request;
  request.pim = fx.pim;
  request.info = fx.info;
  request.schemes = {fx.fast_scheme, fx.late_scheme};
  request.requirements = {{"QREQ", "Req", "Ack", 80}};
  const core::VerifyReport report = verifier.verify(request);

  // Stage 1 ran once for both candidates.
  ASSERT_EQ(report.pim_stages.size(), 1u);
  EXPECT_EQ(report.pim_stages.front().explorations, 1);

  ASSERT_EQ(report.schemes.size(), 2u);
  EXPECT_TRUE(report.schemes[0].all_passed()) << "fast scheme must pass";
  EXPECT_FALSE(report.schemes[1].all_passed()) << "late scheme must fail (timelock)";
  EXPECT_TRUE(report.schemes[0].constraints.all_hold());
  EXPECT_FALSE(report.schemes[1].constraints.all_hold());
  EXPECT_FALSE(report.all_passed());

  // PIM verdicts are shared verbatim across candidates.
  EXPECT_EQ(report.schemes[0].requirements[0].pim.max_delay,
            report.schemes[1].requirements[0].pim.max_delay);

  const std::string summary = report.summary();
  EXPECT_NE(summary.find("scheme comparison"), std::string::npos) << summary;
  EXPECT_NE(summary.find("[PASS] QREQ"), std::string::npos) << summary;
  EXPECT_NE(summary.find("[FAIL] QREQ"), std::string::npos) << summary;
}

TEST(VerifierService, SessionPoolServesRepeatRequestsWithoutExploration) {
  QuickstartFixture fx;
  if (!fx.ok) GTEST_SKIP() << "example model files not found from test cwd";

  core::Verifier verifier;
  core::VerifyRequest request;
  request.pim = fx.pim;
  request.info = fx.info;
  request.schemes = {fx.fast_scheme};
  request.requirements = {{"QREQ", "Req", "Ack", 80}};

  const core::VerifyReport cold = verifier.verify(request);
  EXPECT_GT(verifier.pooled_sessions(), 0u);
  const core::VerifyReport warm = verifier.verify(request);

  // Same verdicts and bounds, zero fresh exploration anywhere.
  EXPECT_EQ(core::framework_result_from(cold, 0, 0).bounds.to_string(),
            core::framework_result_from(warm, 0, 0).bounds.to_string());
  EXPECT_EQ(warm.pim_stages.front().explorations, 0);
  EXPECT_EQ(warm.pim_stages.front().explore.states_explored, 0u);
  EXPECT_EQ(warm.explorations_in("constraints"), 0);
  EXPECT_EQ(warm.explorations_in("bounds"), 0);
}

TEST(VerifierService, PoolCapEvictsLeastRecentlyUsed) {
  QuickstartFixture fx;
  if (!fx.ok) GTEST_SKIP() << "example model files not found from test cwd";

  core::Verifier::Config config;
  config.max_sessions = 1;
  core::Verifier verifier(config);
  core::VerifyRequest request;
  request.pim = fx.pim;
  request.info = fx.info;
  request.schemes = {fx.fast_scheme};
  request.requirements = {{"QREQ", "Req", "Ack", 80}};
  verifier.verify(request);
  // One request touches two sessions (PIM + PSM); the cap keeps only one.
  EXPECT_EQ(verifier.pooled_sessions(), 1u);

  core::Verifier::Config off;
  off.max_sessions = 0;
  core::Verifier unpooled(off);
  const core::VerifyReport report = unpooled.verify(request);
  EXPECT_EQ(unpooled.pooled_sessions(), 0u);
  EXPECT_TRUE(report.all_passed());
}

TEST(VerifierService, ConcurrentCallersShareOneVerifier) {
  QuickstartFixture fx;
  if (!fx.ok) GTEST_SKIP() << "example model files not found from test cwd";
  const std::vector<core::TimingRequirement> reqs = quickstart_requirements();

  core::Verifier verifier;
  // Reference answers, computed single-threaded.
  core::VerifyRequest request;
  request.pim = fx.pim;
  request.info = fx.info;
  request.schemes = {fx.fast_scheme};
  request.requirements = reqs;
  const core::VerifyReport reference = verifier.verify(request);

  constexpr int kThreads = 8;
  std::vector<std::string> rendered(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      core::VerifyRequest mine;
      mine.pim = fx.pim;
      mine.info = fx.info;
      mine.schemes = {fx.fast_scheme};
      mine.requirements = reqs;
      // Concurrent callers hammer the same pooled sessions.
      rendered[static_cast<std::size_t>(t)] = verifier.verify(mine).summary();
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& s : rendered) EXPECT_EQ(s, reference.summary());
}

TEST(VerifierService, PoolDoesNotAliasReorderedDeclarations) {
  // Two renderings of the same two-input network, with the input channel
  // declarations swapped. Their canonical fingerprints are EQUAL (the
  // fingerprint is declaration-order-invariant), but the raw ids of the
  // per-variable probes and C1-C4 flags differ — so sharing one pooled
  // session between them would evaluate the second model's queries against
  // the first model's network. The pool key must keep them apart while a
  // single Verifier serves both.
  const char* model_a =
      "network twoin\n"
      "clock x\nclock env_x\n"
      "input Go\ninput Halt\noutput Done\n"
      "automaton M {\n"
      "  init loc Idle\n  loc Busy inv x <= 50\n"
      "  Idle -> Busy on m_Go? do x := 0\n"
      "  Idle -> Idle on m_Halt?\n"
      "  Busy -> Idle when x >= 10 on c_Done!\n"
      "}\n"
      "automaton ENV {\n"
      "  init loc Idle\n  loc Await\n"
      "  Idle -> Await when env_x >= 100 on m_Go! do env_x := 0\n"
      "  Await -> Idle on c_Done? do env_x := 0\n"
      "}\n";
  const char* model_b =
      "network twoin\n"
      "clock x\nclock env_x\n"
      "input Halt\ninput Go\noutput Done\n"  // <- inputs swapped
      "automaton M {\n"
      "  init loc Idle\n  loc Busy inv x <= 50\n"
      "  Idle -> Busy on m_Go? do x := 0\n"
      "  Idle -> Idle on m_Halt?\n"
      "  Busy -> Idle when x >= 10 on c_Done!\n"
      "}\n"
      "automaton ENV {\n"
      "  init loc Idle\n  loc Await\n"
      "  Idle -> Await when env_x >= 100 on m_Go! do env_x := 0\n"
      "  Await -> Idle on c_Done? do env_x := 0\n"
      "}\n";
  const ta::Network pim_a = lang::parse_model(model_a);
  const ta::Network pim_b = lang::parse_model(model_b);
  const core::PimInfo info_a = core::analyze_pim(pim_a);
  const core::PimInfo info_b = core::analyze_pim(pim_b);
  ASSERT_NE(info_a.inputs, info_b.inputs) << "the reorder must be visible in raw structure";

  auto scheme_for = [](const core::PimInfo& info) {
    return core::example_is1(info.inputs, info.outputs);
  };
  auto request_for = [&](const ta::Network& pim, const core::PimInfo& info) {
    core::VerifyRequest request;
    request.pim = pim;
    request.info = info;
    request.schemes = {scheme_for(info)};
    request.requirements = {{"R", "Go", "Done", 200}};
    return request;
  };

  // References from isolated Verifiers (nothing to alias with).
  core::Verifier fresh_a, fresh_b;
  const std::string ref_a = fresh_a.verify(request_for(pim_a, info_a)).summary();
  const std::string ref_b = fresh_b.verify(request_for(pim_b, info_b)).summary();

  // One shared Verifier serving both orderings, either order first.
  core::Verifier shared;
  EXPECT_EQ(shared.verify(request_for(pim_a, info_a)).summary(), ref_a);
  EXPECT_EQ(shared.verify(request_for(pim_b, info_b)).summary(), ref_b);
  EXPECT_EQ(shared.verify(request_for(pim_a, info_a)).summary(), ref_a);
  // The separation property itself: the two instrumented PIMs share a
  // canonical fingerprint (channel reorder is fingerprint-invariant) but
  // differ in raw declaration order, so the pool must hold FOUR sessions
  // (PIM + PSM per representation), not three. A fingerprint-only pool key
  // would alias the PIM slot — benign for today's appended-probe queries,
  // silently wrong the moment any queried id depends on declaration order.
  EXPECT_EQ(shared.pooled_sessions(), 4u);
}

// A small two-output PIM for binding-attribution coverage: M acknowledges
// each request quickly (c_Ack within [5, 20]) and completes it slowly
// (c_Done within a further [30, 60]), so the two requirement pairs have
// genuinely different worst cases.
const char* const kDuoPim = R"(
network duo

clock x
clock env_x

input  Req
output Ack
output Done

automaton M {
  init loc Idle
  loc Working inv x <= 10
  loc Finishing inv x <= 30

  Idle -> Working on m_Req? do x := 0
  Working -> Finishing when x >= 2 on c_Ack!
  Finishing -> Idle when x >= 15 on c_Done!
}

automaton ENV {
  init loc Idle
  loc AwaitAck
  loc AwaitDone

  Idle -> AwaitAck when env_x >= 50 on m_Req! do env_x := 0
  AwaitAck -> AwaitDone on c_Ack?
  AwaitDone -> Idle on c_Done? do env_x := 0
}
)";

const char* const kDuoScheme = R"(
scheme duo-board {
  input Req {
    signal pulse
    read interrupt
    delay 1 3
  }

  output Ack {
    delay 1 3
  }

  output Done {
    delay 1 3
  }

  io {
    invocation periodic 5
    transfer buffers 5
    policy read-all
    stages 1 1 1
  }
}
)";

// Slack attribution across a batch: two requirements over DIFFERENT output
// pairs, three candidate schemes. The stock scheme is tightest on the Ack
// path; a degraded Done device flips the binding to REQ2 and breaks the
// original REQ2 bound (mixed met/NOT-met within one scheme); a late scheme
// (invocation period overruns M's response window) fails outright, so the
// report mixes passing and failing schemes and the exit-code predicate
// (all_passed) is exercised both ways. The greppable per-requirement
// "slack:" lines and the comparison-table binding attribution are pinned.
TEST(VerifierService, BindingRequirementDiffersPerSchemeWithMixedVerdicts) {
  const ta::Network pim = lang::parse_model(kDuoPim);
  const core::PimInfo info = core::analyze_pim(pim);
  const core::ImplementationScheme board = lang::parse_scheme(kDuoScheme);

  core::Verifier verifier;

  // Learn the stock scheme's verified M-C bounds for the two pairs.
  core::VerifyRequest probe_request;
  probe_request.pim = pim;
  probe_request.info = info;
  probe_request.schemes = {board};
  probe_request.requirements = {{"REQ1", "Req", "Ack", 200}, {"REQ2", "Req", "Done", 200}};
  const core::VerifyReport learned = verifier.verify(probe_request);
  ASSERT_EQ(learned.schemes.size(), 1u);
  const std::int64_t mc1 = learned.schemes[0].requirements[0].bounds.verified_mc_delay;
  const std::int64_t mc2 = learned.schemes[0].requirements[1].bounds.verified_mc_delay;
  ASSERT_TRUE(learned.schemes[0].requirements[0].bounds.verified_mc_bounded);
  ASSERT_TRUE(learned.schemes[0].requirements[1].bounds.verified_mc_bounded);
  ASSERT_NE(mc1, mc2) << "the two pairs must have distinct worst cases";

  // Requirements with margins 15 (REQ1) and 30 (REQ2) over the stock
  // scheme; the degraded scheme adds 45ms to the Done device, so REQ2's
  // margin flips negative while REQ1 is untouched. The late scheme's 40ms
  // period cannot fit a write inside M's 10ms Working invariant: timelock.
  core::ImplementationScheme degraded = board;
  degraded.outputs.at("Done").delay_max += 45;
  core::ImplementationScheme late = board;
  late.name = "duo-late";
  late.io.period = 40;
  core::VerifyRequest request;
  request.pim = pim;
  request.info = info;
  request.schemes = {board, degraded, late};
  request.requirements = {{"REQ1", "Req", "Ack", mc1 + 15}, {"REQ2", "Req", "Done", mc2 + 30}};
  const core::VerifyReport report = verifier.verify(request);
  ASSERT_EQ(report.schemes.size(), 3u);
  const core::SchemeVerification& sva = report.schemes[0];
  const core::SchemeVerification& svb = report.schemes[1];
  const core::SchemeVerification& svc = report.schemes[2];

  // Stock scheme: both requirements pass, REQ1 is binding (slack 15 < 30).
  ASSERT_EQ(sva.slack.requirements.size(), 2u);
  EXPECT_EQ(sva.slack.requirements[0].slack_ms, 15);
  EXPECT_EQ(sva.slack.requirements[1].slack_ms, 30);
  EXPECT_EQ(sva.slack.binding().requirement, "REQ1");
  EXPECT_EQ(sva.slack.min_slack_ms, 15);
  EXPECT_TRUE(sva.requirements[0].psm_meets_original);
  EXPECT_TRUE(sva.requirements[1].psm_meets_original);
  EXPECT_TRUE(sva.all_passed()) << "stock scheme must pass — exit code 0";

  // Degraded scheme: REQ1 unaffected, REQ2's original bound broken — the
  // binding flips and the slack goes negative. (The scheme still clears
  // the relaxed Lemma-2 verdict: its own slower device relaxes delta'.)
  ASSERT_EQ(svb.slack.requirements.size(), 2u);
  EXPECT_EQ(svb.slack.requirements[0].slack_ms, 15)
      << "a slower Done device must not change the Ack path";
  EXPECT_LT(svb.slack.requirements[1].slack_ms, 0);
  EXPECT_EQ(svb.slack.binding().requirement, "REQ2");
  EXPECT_TRUE(svb.requirements[0].psm_meets_original);
  EXPECT_FALSE(svb.requirements[1].psm_meets_original)
      << "negative slack must show as original bound NOT met";

  // Late scheme: constraint violation — the failing exit-code case.
  EXPECT_FALSE(svc.all_passed()) << "late scheme must fail — exit code 1";
  EXPECT_FALSE(report.all_passed());

  // Greppable surface: per-requirement slack lines with binding markers,
  // and the comparison table attributes the binding requirement per scheme.
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("slack: REQ1 15ms"), std::string::npos) << summary;
  EXPECT_NE(summary.find("slack: REQ2 30ms"), std::string::npos) << summary;
  EXPECT_NE(summary.find("[binding]"), std::string::npos) << summary;
  EXPECT_NE(summary.find("scheme comparison"), std::string::npos) << summary;
}

TEST(VerifierService, RejectsEmptyRequests) {
  QuickstartFixture fx;
  if (!fx.ok) GTEST_SKIP() << "example model files not found from test cwd";
  core::Verifier verifier;
  core::VerifyRequest no_reqs;
  no_reqs.pim = fx.pim;
  no_reqs.schemes = {fx.fast_scheme};
  EXPECT_THROW(verifier.verify(no_reqs), Error);
  core::VerifyRequest no_schemes;
  no_schemes.pim = fx.pim;
  no_schemes.requirements = {{"QREQ", "Req", "Ack", 80}};
  EXPECT_THROW(verifier.verify(no_schemes), Error);
}

TEST(VerifierService, WrapperMatchesDirectServiceUse) {
  QuickstartFixture fx;
  if (!fx.ok) GTEST_SKIP() << "example model files not found from test cwd";
  const core::TimingRequirement req{"QREQ", "Req", "Ack", 80};

  const core::FrameworkResult wrapped =
      core::run_framework(fx.pim, fx.info, fx.fast_scheme, req);
  core::Verifier verifier;
  core::VerifyRequest request;
  request.pim = fx.pim;
  request.info = fx.info;
  request.schemes = {fx.fast_scheme};
  request.requirements = {req};
  const core::FrameworkResult direct =
      core::framework_result_from(verifier.verify(request), 0, 0);
  EXPECT_EQ(wrapped.summary(), direct.summary());
}

}  // namespace
}  // namespace psv
