// Parameterized property suite: the PIM -> PSM transformation must produce
// a well-formed, timelock-free, constraint-clean PSM with bounded verified
// delays (within the Lemma-1 analytic bounds) for EVERY mechanism
// combination of Definition 1.
#include <gtest/gtest.h>

#include <sstream>

#include "core/analysis.h"
#include "core/constraints.h"
#include "core/transform.h"
#include "mc/query.h"
#include "mc/reach.h"
#include "ta/validate.h"

namespace psv::core {
namespace {

using namespace psv::ta;

// Same mini ping/pong PIM as transform_test, kept local for independence.
Network mini_pim() {
  Network net("sweep");
  const ClockId x = net.add_clock("x");
  const ClockId env_x = net.add_clock("env_x");
  const ChanId ping = net.add_channel("m_Ping", ChanKind::kBinary);
  const ChanId pong = net.add_channel("c_Pong", ChanKind::kBinary);

  Automaton m("M");
  const LocId idle = m.add_location("Idle");
  const LocId busy = m.add_location("Busy", LocKind::kNormal, {cc_le(x, 100)});
  Edge take;
  take.src = idle;
  take.dst = busy;
  take.sync = SyncLabel::receive(ping);
  take.update.resets = {{x, 0}};
  m.add_edge(std::move(take));
  Edge reply;
  reply.src = busy;
  reply.dst = idle;
  reply.guard.clocks = {cc_ge(x, 20)};
  reply.sync = SyncLabel::send(pong);
  m.add_edge(std::move(reply));
  net.add_automaton(std::move(m));

  Automaton env("ENV");
  const LocId eidle = env.add_location("Idle");
  const LocId await = env.add_location("Await");
  Edge send;
  send.src = eidle;
  send.dst = await;
  send.guard.clocks = {cc_ge(env_x, 60)};
  send.sync = SyncLabel::send(ping);
  send.update.resets = {{env_x, 0}};
  env.add_edge(std::move(send));
  Edge recv;
  recv.src = await;
  recv.dst = eidle;
  recv.sync = SyncLabel::receive(pong);
  recv.update.resets = {{env_x, 0}};
  env.add_edge(std::move(recv));
  net.add_automaton(std::move(env));
  return net;
}

struct SweepCase {
  SignalType signal;
  ReadMechanism read;
  TransferKind transfer;
  ReadPolicy policy;
  InvocationKind invocation;

  std::string label() const {
    std::ostringstream os;
    os << to_string(signal) << "/" << to_string(read) << "/" << to_string(transfer) << "/"
       << to_string(policy) << "/" << to_string(invocation);
    return os.str();
  }
};

bool is_sustained_polling(const SweepCase& c) {
  return c.signal == SignalType::kSustainedDuration && c.read == ReadMechanism::kPolling;
}

std::vector<SweepCase> all_valid_cases() {
  std::vector<SweepCase> cases;
  for (SignalType signal : {SignalType::kPulse, SignalType::kSustainedDuration,
                            SignalType::kSustainedUntilRead}) {
    for (ReadMechanism read : {ReadMechanism::kInterrupt, ReadMechanism::kPolling}) {
      if (signal == SignalType::kPulse && read == ReadMechanism::kPolling)
        continue;  // invalid per the paper (checked separately in scheme_test)
      for (TransferKind transfer : {TransferKind::kBuffer, TransferKind::kSharedVariable}) {
        for (ReadPolicy policy : {ReadPolicy::kReadAll, ReadPolicy::kReadOne}) {
          for (InvocationKind invocation :
               {InvocationKind::kPeriodic, InvocationKind::kAperiodic}) {
            SweepCase c{signal, read, transfer, policy, invocation};
            // The sustained-duration + polling PSM carries an extra HOLD
            // automaton whose state space is ~50x the other combos'; one
            // representative keeps the suite's runtime sane (the variant
            // mechanics are additionally covered by transform_test and
            // schedulability_test).
            if (is_sustained_polling(c) &&
                !(transfer == TransferKind::kBuffer && policy == ReadPolicy::kReadAll &&
                  invocation == InvocationKind::kPeriodic))
              continue;
            cases.push_back(c);
          }
        }
      }
    }
  }
  return cases;
}

ImplementationScheme scheme_for(const SweepCase& c) {
  ImplementationScheme is = example_is1({"Ping"}, {"Pong"});
  is.name = "sweep";
  auto& in = is.inputs.at("Ping");
  in.signal = c.signal;
  in.read = c.read;
  in.delay_min = 1;
  in.delay_max = 3;
  // Harmonic constants (poll == period, sustain a multiple of poll) keep
  // the zone graph small; near-coprime timers fragment it badly. The
  // sustained-duration + polling combination carries an extra HOLD
  // automaton and is by far the heaviest — full harmony matters there.
  in.polling_interval = c.read == ReadMechanism::kPolling ? 20 : 0;
  in.sustain_duration = c.signal == SignalType::kSustainedDuration ? 40 : 0;
  is.outputs.at("Pong").delay_min = 1;
  is.outputs.at("Pong").delay_max = 4;
  is.io.transfer = c.transfer;
  is.io.read_policy = c.policy;
  is.io.invocation = c.invocation;
  is.io.period = 20;
  is.io.buffer_size = 2;
  is.io.read_stage_max = 2;
  is.io.compute_stage_max = 2;
  is.io.write_stage_max = 2;
  return is;
}

class TransformSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TransformSweep, PsmWellFormed) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  PsmArtifacts psm = transform(pim, info, scheme_for(GetParam()));
  EXPECT_NO_THROW(validate_or_throw(psm.psm));
  EXPECT_GE(psm.psm.num_automata(), 5);
}

TEST_P(TransformSweep, NoTimelock) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  PsmArtifacts psm = transform(pim, info, scheme_for(GetParam()));
  mc::Reachability engine(psm.psm, mc::StateFormula{});
  mc::DeadlockResult r = engine.find_deadlock();
  EXPECT_FALSE(r.found && r.timelock) << GetParam().label() << "\n" << r.trace.to_string();
}

TEST_P(TransformSweep, ConstraintsHold) {
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  PsmArtifacts psm = transform(pim, info, scheme_for(GetParam()));
  ConstraintReport report = check_constraints(psm);
  EXPECT_TRUE(report.all_hold()) << GetParam().label() << "\n" << report.to_string();
}

TEST_P(TransformSweep, VerifiedDelaysWithinAnalytic) {
  if (is_sustained_polling(GetParam()))
    GTEST_SKIP() << "probe queries on the HOLD-automaton product exceed the suite's time "
                    "budget; the representative combo is covered by NoTimelock and "
                    "ConstraintsHold above";
  Network pim = mini_pim();
  PimInfo info = analyze_pim(pim);
  const ImplementationScheme is = scheme_for(GetParam());
  PsmArtifacts psm = transform(pim, info, is);

  // Input- and Output-Delay only: the end-to-end M-C query doubles the
  // clock count (instrumented ENVMC copy) and is exercised by
  // transform_test and e2e_test on dedicated models.
  const std::int64_t in_analytic = analytic_input_delay_bound(is, "Ping");
  mc::MaxClockResult in_bound =
      mc::max_clock_value(psm.psm, mc::when(var_eq(psm.input("Ping").pending, 1)),
                          psm.input("Ping").delay_clock, 10'000, {}, in_analytic);
  ASSERT_TRUE(in_bound.bounded) << GetParam().label();
  EXPECT_LE(in_bound.bound, in_analytic) << GetParam().label();

  const std::int64_t out_analytic = analytic_output_delay_bound(is, "Pong");
  mc::MaxClockResult out_bound =
      mc::max_clock_value(psm.psm, mc::when(var_eq(psm.output("Pong").pending, 1)),
                          psm.output("Pong").delay_clock, 10'000, {}, out_analytic);
  ASSERT_TRUE(out_bound.bounded) << GetParam().label();
  EXPECT_LE(out_bound.bound, out_analytic) << GetParam().label();
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, TransformSweep, ::testing::ValuesIn(all_valid_cases()),
                         [](const ::testing::TestParamInfo<SweepCase>& param_info) {
                           std::string name = param_info.param.label();
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

}  // namespace
}  // namespace psv::core
