// Canonical network fingerprints: presentation-invariant, semantics-exact.
//
// The persistent verification cache keys on ta::fingerprint(), so this suite
// pins both directions of the contract: every presentation-level edit
// (renames of clocks/variables/channels/locations/automata, reordered
// declarations, reordered edges, reordered invariant or guard conjuncts)
// keeps the digest, and every semantic edit (guard constant, edge retarget,
// invariant bound, variable range, channel kind, initial location, location
// urgency, scheme parameter, probe instrumentation, result-affecting
// ExploreOptions) changes the key.
#include <gtest/gtest.h>

#include <string>

#include "core/analysis.h"
#include "core/pim.h"
#include "core/transform.h"
#include "gpca/pump_model.h"
#include "mc/artifact.h"
#include "ta/fingerprint.h"
#include "ta/model.h"

namespace psv {
namespace {

using namespace psv::ta;

/// Presentation and semantic knobs of the test network. Defaults build the
/// base network; every knob flips exactly one aspect.
struct NetKnobs {
  // Presentation (must not change the fingerprint).
  bool rename = false;             ///< different names for everything
  bool reorder_decls = false;      ///< clocks/vars/chans declared in other order
  bool reorder_edges = false;      ///< edges of P added in reverse
  bool reorder_conjuncts = false;  ///< invariant + guard conjunct order flipped
  // Semantics (each must change the fingerprint).
  std::int32_t guard_const = 5;
  std::int32_t inv_bound = 20;
  std::int64_t var_max = 3;
  bool retarget = false;  ///< P's second edge loops at L1 instead of L0
  ChanKind kind = ChanKind::kBinary;
  LocKind l1_kind = LocKind::kNormal;
  bool flip_initial = false;
  bool extra_unused_clock_pair_swapped = false;
};

struct BuiltNet {
  Network net;
  ClockId x = -1, y = -1;
  VarId a = -1, b = -1;
};

BuiltNet build(const NetKnobs& k) {
  BuiltNet out;
  Network net(k.rename ? "other" : "fpnet");
  auto name = [&k](const std::string& base) { return k.rename ? base + "_renamed" : base; };

  ClockId x, y;
  VarId a, b;
  ChanId ch;
  if (k.reorder_decls) {
    y = net.add_clock(name("y"));
    x = net.add_clock(name("x"));
    b = net.add_var(name("b"), 0, 0, 9);
    a = net.add_var(name("a"), 1, 0, k.var_max);
    ch = net.add_channel(name("ch"), k.kind);
  } else {
    x = net.add_clock(name("x"));
    y = net.add_clock(name("y"));
    a = net.add_var(name("a"), 1, 0, k.var_max);
    b = net.add_var(name("b"), 0, 0, 9);
    ch = net.add_channel(name("ch"), k.kind);
  }
  if (k.extra_unused_clock_pair_swapped) {
    net.add_clock(name("u2"));
    net.add_clock(name("u1"));
  } else {
    net.add_clock(name("u1"));
    net.add_clock(name("u2"));
  }

  Automaton p(name("P"));
  std::vector<ClockConstraint> inv = {cc_le(x, k.inv_bound), cc_le(y, 50)};
  if (k.reorder_conjuncts) std::swap(inv[0], inv[1]);
  const LocId l0 = p.add_location(name("L0"), LocKind::kNormal, inv);
  const LocId l1 = p.add_location(name("L1"), k.l1_kind);
  if (k.flip_initial) p.set_initial(l1);

  Edge send;
  send.src = l0;
  send.dst = l1;
  send.guard.clocks = {cc_ge(x, k.guard_const), cc_le(y, 40)};
  if (k.reorder_conjuncts) std::swap(send.guard.clocks[0], send.guard.clocks[1]);
  send.guard.data = var_eq(a, 1);
  send.sync = SyncLabel::send(ch);
  send.update.assignments = {{b, IntExpr::var(a) + IntExpr::constant(1)}};
  send.update.resets = {{x, 0}};

  Edge back;
  back.src = l1;
  back.dst = k.retarget ? l1 : l0;
  back.guard.clocks = {cc_ge(y, 2)};
  back.update.assignments = {{a, IntExpr::constant(1)}};
  back.update.resets = {{y, 0}};

  if (k.reorder_edges) {
    p.add_edge(back);
    p.add_edge(send);
  } else {
    p.add_edge(send);
    p.add_edge(back);
  }
  net.add_automaton(std::move(p));

  Automaton q(name("Q"));
  const LocId m0 = q.add_location(name("M0"));
  const LocId m1 = q.add_location(name("M1"));
  Edge recv;
  recv.src = m0;
  recv.dst = m1;
  recv.sync = SyncLabel::receive(ch);
  q.add_edge(recv);
  Edge idle;
  idle.src = m1;
  idle.dst = m0;
  q.add_edge(idle);
  net.add_automaton(std::move(q));

  out.net = std::move(net);
  out.x = x;
  out.y = y;
  out.a = a;
  out.b = b;
  return out;
}

Digest128 digest_of(const NetKnobs& k) { return fingerprint(build(k).net).digest; }

// --- Presentation invariance ------------------------------------------------

TEST(Fingerprint, InvariantUnderRenames) {
  NetKnobs renamed;
  renamed.rename = true;
  EXPECT_EQ(digest_of({}), digest_of(renamed));
}

TEST(Fingerprint, InvariantUnderDeclarationReorder) {
  NetKnobs reordered;
  reordered.reorder_decls = true;
  EXPECT_EQ(digest_of({}), digest_of(reordered));
}

TEST(Fingerprint, InvariantUnderEdgeReorder) {
  NetKnobs reordered;
  reordered.reorder_edges = true;
  EXPECT_EQ(digest_of({}), digest_of(reordered));
}

TEST(Fingerprint, InvariantUnderConjunctReorder) {
  NetKnobs reordered;
  reordered.reorder_conjuncts = true;
  EXPECT_EQ(digest_of({}), digest_of(reordered));
}

TEST(Fingerprint, InvariantUnderUnusedDeclReorder) {
  NetKnobs base;
  base.extra_unused_clock_pair_swapped = false;
  NetKnobs swapped;
  swapped.extra_unused_clock_pair_swapped = true;
  EXPECT_EQ(digest_of(base), digest_of(swapped));
}

TEST(Fingerprint, InvariantUnderEveryPresentationEditAtOnce) {
  NetKnobs all;
  all.rename = true;
  all.reorder_decls = true;
  all.reorder_edges = true;
  all.reorder_conjuncts = true;
  all.extra_unused_clock_pair_swapped = true;
  EXPECT_EQ(digest_of({}), digest_of(all));
}

// --- Semantic sensitivity ---------------------------------------------------

TEST(Fingerprint, SensitiveToGuardConstant) {
  NetKnobs changed;
  changed.guard_const = 6;
  EXPECT_NE(digest_of({}), digest_of(changed));
}

TEST(Fingerprint, SensitiveToInvariantBound) {
  NetKnobs changed;
  changed.inv_bound = 21;
  EXPECT_NE(digest_of({}), digest_of(changed));
}

TEST(Fingerprint, SensitiveToEdgeRetarget) {
  NetKnobs changed;
  changed.retarget = true;
  EXPECT_NE(digest_of({}), digest_of(changed));
}

TEST(Fingerprint, SensitiveToVariableRange) {
  NetKnobs changed;
  changed.var_max = 4;
  EXPECT_NE(digest_of({}), digest_of(changed));
}

TEST(Fingerprint, SensitiveToChannelKind) {
  NetKnobs changed;
  changed.kind = ChanKind::kBroadcast;
  EXPECT_NE(digest_of({}), digest_of(changed));
}

TEST(Fingerprint, SensitiveToLocationUrgency) {
  NetKnobs changed;
  changed.l1_kind = LocKind::kUrgent;
  EXPECT_NE(digest_of({}), digest_of(changed));
}

TEST(Fingerprint, SensitiveToInitialLocation) {
  NetKnobs changed;
  changed.flip_initial = true;
  EXPECT_NE(digest_of({}), digest_of(changed));
}

TEST(Fingerprint, SensitiveToAssignmentOrder) {
  // Assignments apply sequentially against the mutating valuation, so
  // [b := 0, a := b] (a ends 0) and [a := b, b := 0] (a ends old-b) are
  // semantically different edges and must never share a cache key.
  auto make = [](bool zero_first) {
    Network net("seq");
    const VarId a = net.add_var("a", 0, 0, 9);
    const VarId b = net.add_var("b", 5, 0, 9);
    Automaton p("P");
    const LocId l0 = p.add_location("L0");
    const LocId l1 = p.add_location("L1");
    Edge e;
    e.src = l0;
    e.dst = l1;
    const Assignment zero_b{b, IntExpr::constant(0)};
    const Assignment copy_b{a, IntExpr::var(b)};
    e.update.assignments = zero_first ? std::vector<Assignment>{zero_b, copy_b}
                                      : std::vector<Assignment>{copy_b, zero_b};
    p.add_edge(e);
    net.add_automaton(std::move(p));
    return fingerprint(net).digest;
  };
  EXPECT_NE(make(true), make(false));
}

// --- Query digests follow the canonical id space ----------------------------

TEST(Fingerprint, BoundQueryDigestSurvivesPresentationEdits) {
  const BuiltNet base = build({});
  NetKnobs knobs;
  knobs.rename = true;
  knobs.reorder_decls = true;
  knobs.reorder_edges = true;
  const BuiltNet edited = build(knobs);
  const NetworkFingerprint fp_base = fingerprint(base.net);
  const NetworkFingerprint fp_edited = fingerprint(edited.net);
  ASSERT_EQ(fp_base.digest, fp_edited.digest);

  auto query_of = [](const BuiltNet& built) {
    mc::BoundQuery q;
    q.pred = mc::when(var_eq(built.a, 1));
    q.pred.and_clock(cc_le(built.y, 40));
    q.clock = built.x;
    q.limit = 10'000;
    return q;
  };
  EXPECT_EQ(mc::bound_query_digest(fp_base.ids, query_of(base)),
            mc::bound_query_digest(fp_edited.ids, query_of(edited)));

  mc::BoundQuery other = query_of(base);
  other.clock = base.y;
  EXPECT_NE(mc::bound_query_digest(fp_base.ids, query_of(base)),
            mc::bound_query_digest(fp_base.ids, other));
  other = query_of(base);
  other.limit = 20'000;
  EXPECT_NE(mc::bound_query_digest(fp_base.ids, query_of(base)),
            mc::bound_query_digest(fp_base.ids, other));
  // The hint seeds the search but cannot change a bound: not part of the key.
  other = query_of(base);
  other.hint = 999;
  EXPECT_EQ(mc::bound_query_digest(fp_base.ids, query_of(base)),
            mc::bound_query_digest(fp_base.ids, other));
}

// --- Pipeline-level keys: scheme edits, probe sets, options -----------------

TEST(Fingerprint, SensitiveToSchemeParameters) {
  gpca::PumpModelOptions opt;
  opt.include_empty_syringe = false;
  const Network pim = gpca::build_pump_pim(opt);
  const core::PimInfo info = gpca::pump_pim_info(pim);
  core::ImplementationScheme scheme = gpca::board_scheme(opt);
  const Digest128 base = fingerprint(core::transform(pim, info, scheme).psm).digest;

  core::ImplementationScheme jittered = gpca::board_scheme(opt);
  jittered.inputs.at("BolusReq").delay_max += 10;
  EXPECT_NE(base, fingerprint(core::transform(pim, info, jittered).psm).digest)
      << "a scheme timing edit must invalidate the PSM key";
}

TEST(Fingerprint, SensitiveToProbeInstrumentation) {
  gpca::PumpModelOptions opt;
  opt.include_empty_syringe = false;
  const Network pim = gpca::build_pump_pim(opt);
  const core::PimInfo info = gpca::pump_pim_info(pim);
  const core::PsmArtifacts psm = core::transform(pim, info, gpca::board_scheme(opt));
  const core::InstrumentedPsm instrumented =
      core::instrument_psm_for_requirement(psm, gpca::req1(opt));
  EXPECT_NE(fingerprint(psm.psm).digest, fingerprint(instrumented.net).digest)
      << "the probe set is part of the key (through the instrumented network)";
}

TEST(Fingerprint, ArtifactKeyCoversResultAffectingOptionsOnly) {
  const BuiltNet base = build({});
  const NetworkFingerprint fp = fingerprint(base.net);
  mc::ExploreOptions opts;
  const mc::ArtifactKey k0 = mc::artifact_key(fp, opts);

  mc::ExploreOptions more_states = opts;
  more_states.max_states = opts.max_states * 2;
  EXPECT_NE(k0.digest, mc::artifact_key(fp, more_states).digest);

  mc::ExploreOptions probe = opts;
  probe.engine = mc::QueryEngine::kProbe;
  EXPECT_NE(k0.digest, mc::artifact_key(fp, probe).digest);

  // Exploration is deterministic across thread counts; jobs must not key.
  mc::ExploreOptions threaded = opts;
  threaded.jobs = 8;
  EXPECT_EQ(k0.digest, mc::artifact_key(fp, threaded).digest);
}

}  // namespace
}  // namespace psv
