// Shared test helpers for locating and reading the shipped example model
// files. Suites run from the repository root (ctest sets WORKING_DIRECTORY)
// but may also be invoked from the build tree by hand, so the directory is
// probed at a few depths.
#pragma once

#include <fstream>
#include <sstream>
#include <string>

namespace psv::testing {

inline std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Directory holding the shipped `.psv`/`.pss` files, or "" when not found
/// (callers GTEST_SKIP in that case).
inline std::string find_model_dir() {
  for (const char* prefix : {"examples/models/", "../examples/models/",
                             "../../examples/models/", "../../../examples/models/"}) {
    if (!read_file(std::string(prefix) + "pump.psv").empty()) return prefix;
  }
  return {};
}

}  // namespace psv::testing
