// Shared test helpers for locating and reading the shipped example model
// files. Suites run from the repository root (ctest sets WORKING_DIRECTORY)
// but may also be invoked from the build tree by hand, so the directory is
// probed at a few depths.
#pragma once

#include <string>

#include "util/io.h"

namespace psv::testing {

/// Lenient read used by the directory probe below and by suites that skip
/// when the shipped models are absent: "" instead of an error.
inline std::string read_file(const std::string& path) {
  return util::try_read_file(path).value_or(std::string{});
}

/// Directory holding the shipped `.psv`/`.pss` files, or "" when not found
/// (callers GTEST_SKIP in that case).
inline std::string find_model_dir() {
  for (const char* prefix : {"examples/models/", "../examples/models/",
                             "../../examples/models/", "../../../examples/models/"}) {
    if (!read_file(std::string(prefix) + "pump.psv").empty()) return prefix;
  }
  return {};
}

}  // namespace psv::testing
