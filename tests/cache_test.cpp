// Persistent verification-artifact cache: round-trips, hardened loading,
// and the warm-vs-cold differential guarantee.
//
// The cache must be invisible to correctness: a warm run serves bounds,
// witness traces, constraint verdicts and even exploration statistics
// bit-identical to the cold run that stored them, while exploring zero
// states. And it must be unbreakable from disk: a truncated, bit-flipped,
// version-bumped or foreign-endian artifact file is ignored with a warning
// and the session falls back to exploration — never a crash, never a wrong
// bound (every single-bit corruption of a stored file is exercised below).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/framework.h"
#include "dbm/dbm.h"
#include "core/pim.h"
#include "core/transform.h"
#include "lang/model_parser.h"
#include "lang/scheme_parser.h"
#include "mc/artifact.h"
#include "mc/session.h"
#include "model_paths.h"
#include "util/rng.h"

namespace psv {
namespace {

using namespace psv::ta;
using psv::testing::find_model_dir;
using psv::testing::read_file;

/// Self-cleaning unique temp directory for one test.
struct TempCacheDir {
  std::filesystem::path path;
  TempCacheDir() {
    Rng rng(::testing::UnitTest::GetInstance()->random_seed() + 7919u);
    path = std::filesystem::temp_directory_path() /
           ("psv-cache-test-" + std::to_string(rng.uniform_int(0, 1'000'000'000)));
    std::filesystem::create_directories(path);
  }
  ~TempCacheDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

mc::VerificationArtifact sample_artifact() {
  mc::VerificationArtifact artifact;
  mc::VerificationArtifact::BoundEntry entry;
  entry.query = Digest128{0x1111, 0x2222};
  entry.result.bounded = true;
  entry.result.bound = 490;
  entry.result.probes = 2;
  entry.result.stats = {100, 90, 300, 12};
  entry.result.witness.steps = {{"P.L0->L1[ch!]", "(L1, M0) vars{a=1} zone{x<=5}"},
                                {"Q.M0->M1[ch?]", "(L1, M1) vars{a=1} zone{}"}};
  // v3 payload: the ranked critical traces and the extrapolation constants
  // that replay them. The fuzzing tests below corrupt these bytes too.
  entry.result.ranked.push_back({490, entry.result.witness});
  mc::Trace runner_up;
  runner_up.steps = {{"P.L0->L1[ch!]", "(L1, M0) vars{a=0} zone{x<=3}"}};
  entry.result.ranked.push_back({470, runner_up});
  entry.result.witness_consts = {500, -1, 489};
  artifact.bounds.push_back(entry);
  entry.query = Digest128{0x3333, 0x4444};
  entry.result.bounded = false;
  entry.result.bound = 0;
  entry.result.condition_unreachable = true;
  entry.result.witness.steps.clear();
  entry.result.ranked.clear();
  entry.result.witness_consts.clear();
  artifact.bounds.push_back(entry);
  artifact.has_flag_sweep = true;
  artifact.var_seen_one = {1, 0, 0, 1};
  artifact.deadlock.found = true;
  artifact.deadlock.timelock = false;
  artifact.deadlock.trace.steps = {{"delay", "(L0, M0) vars{} zone{}"}};
  artifact.deadlock.stats = {100, 90, 300, 12};

  // v4 payload: memoized reachability / bounded-response results, the
  // skeleton digest, and a small passed store. The fuzzing tests below
  // corrupt (and truncate inside) these bytes too.
  mc::VerificationArtifact::ReachEntry reach;
  reach.query = Digest128{0x5555, 0x6666};
  reach.result.reachable = true;
  reach.result.trace.steps = {{"P.L0->L1[ch!]", "(L1, M0) vars{a=1} zone{x<=5}"}};
  reach.result.stats = {40, 33, 80, 4};
  artifact.reaches.push_back(reach);
  mc::VerificationArtifact::ResponseEntry response;
  response.query = Digest128{0x7777, 0x9999};
  response.result.holds = false;
  response.result.violation.steps = {{"delay", "(L1, M0) vars{} zone{t>80}"}};
  response.result.stats = {41, 34, 81, 5};
  artifact.responses.push_back(response);
  artifact.skeleton = Digest128{0xbbbb, 0xcccc};

  mc::PassedStoreExport store;
  store.num_clocks = 1;
  store.num_vars = 1;
  store.num_automata = 1;
  store.max_consts = {0, 30};
  store.edge_digests = {{Digest128{0x1, 0x2}}};
  store.inv_digests = {{Digest128{0x3, 0x4}}};
  mc::StoreEntry initial;
  initial.locs = {0};
  initial.vars = {7};
  initial.zone = dbm::Dbm(1);
  store.entries.push_back(initial);
  mc::StoreEntry child;
  child.parent = 0;
  child.label = "M.Idle->Work[req?]";
  child.edges = {{0, 0}};
  child.locs = {1};
  child.vars = {8};
  child.zone = dbm::Dbm(1);
  child.zone.up();
  child.pre_zone = dbm::Dbm(1);
  child.pre_differs = true;
  child.covers = {0};
  store.entries.push_back(child);
  artifact.store = std::move(store);
  return artifact;
}

void expect_artifacts_equal(const mc::VerificationArtifact& a, const mc::VerificationArtifact& b) {
  ASSERT_EQ(a.bounds.size(), b.bounds.size());
  for (std::size_t i = 0; i < a.bounds.size(); ++i) {
    EXPECT_EQ(a.bounds[i].query, b.bounds[i].query);
    EXPECT_EQ(a.bounds[i].result.bounded, b.bounds[i].result.bounded);
    EXPECT_EQ(a.bounds[i].result.bound, b.bounds[i].result.bound);
    EXPECT_EQ(a.bounds[i].result.condition_unreachable, b.bounds[i].result.condition_unreachable);
    EXPECT_EQ(a.bounds[i].result.probes, b.bounds[i].result.probes);
    EXPECT_EQ(a.bounds[i].result.stats.states_explored, b.bounds[i].result.stats.states_explored);
    ASSERT_EQ(a.bounds[i].result.witness.steps.size(), b.bounds[i].result.witness.steps.size());
    for (std::size_t s = 0; s < a.bounds[i].result.witness.steps.size(); ++s) {
      EXPECT_EQ(a.bounds[i].result.witness.steps[s].label,
                b.bounds[i].result.witness.steps[s].label);
      EXPECT_EQ(a.bounds[i].result.witness.steps[s].state,
                b.bounds[i].result.witness.steps[s].state);
    }
    ASSERT_EQ(a.bounds[i].result.ranked.size(), b.bounds[i].result.ranked.size());
    for (std::size_t r = 0; r < a.bounds[i].result.ranked.size(); ++r) {
      EXPECT_EQ(a.bounds[i].result.ranked[r].value, b.bounds[i].result.ranked[r].value);
      EXPECT_EQ(a.bounds[i].result.ranked[r].trace.to_string(),
                b.bounds[i].result.ranked[r].trace.to_string());
    }
    EXPECT_EQ(a.bounds[i].result.witness_consts, b.bounds[i].result.witness_consts);
  }
  EXPECT_EQ(a.has_flag_sweep, b.has_flag_sweep);
  EXPECT_EQ(a.var_seen_one, b.var_seen_one);
  EXPECT_EQ(a.deadlock.found, b.deadlock.found);
  EXPECT_EQ(a.deadlock.timelock, b.deadlock.timelock);
  EXPECT_EQ(a.deadlock.stats.states_stored, b.deadlock.stats.states_stored);
  ASSERT_EQ(a.deadlock.trace.steps.size(), b.deadlock.trace.steps.size());

  ASSERT_EQ(a.reaches.size(), b.reaches.size());
  for (std::size_t i = 0; i < a.reaches.size(); ++i) {
    EXPECT_EQ(a.reaches[i].query, b.reaches[i].query);
    EXPECT_EQ(a.reaches[i].result.reachable, b.reaches[i].result.reachable);
    EXPECT_EQ(a.reaches[i].result.trace.to_string(), b.reaches[i].result.trace.to_string());
    EXPECT_EQ(a.reaches[i].result.stats.states_explored, b.reaches[i].result.stats.states_explored);
  }
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_EQ(a.responses[i].query, b.responses[i].query);
    EXPECT_EQ(a.responses[i].result.holds, b.responses[i].result.holds);
    EXPECT_EQ(a.responses[i].result.violation.to_string(),
              b.responses[i].result.violation.to_string());
  }
  EXPECT_EQ(a.skeleton, b.skeleton);
  ASSERT_EQ(a.store.has_value(), b.store.has_value());
  if (a.store.has_value()) {
    EXPECT_EQ(a.store->num_clocks, b.store->num_clocks);
    EXPECT_EQ(a.store->num_vars, b.store->num_vars);
    EXPECT_EQ(a.store->num_automata, b.store->num_automata);
    EXPECT_EQ(a.store->max_consts, b.store->max_consts);
    EXPECT_EQ(a.store->edge_digests, b.store->edge_digests);
    EXPECT_EQ(a.store->inv_digests, b.store->inv_digests);
    ASSERT_EQ(a.store->entries.size(), b.store->entries.size());
    for (std::size_t i = 0; i < a.store->entries.size(); ++i) {
      const mc::StoreEntry& x = a.store->entries[i];
      const mc::StoreEntry& y = b.store->entries[i];
      EXPECT_EQ(x.parent, y.parent);
      EXPECT_EQ(x.label, y.label);
      ASSERT_EQ(x.edges.size(), y.edges.size());
      for (std::size_t e = 0; e < x.edges.size(); ++e) {
        EXPECT_EQ(x.edges[e].automaton, y.edges[e].automaton);
        EXPECT_EQ(x.edges[e].edge_index, y.edges[e].edge_index);
      }
      EXPECT_EQ(x.locs, y.locs);
      EXPECT_EQ(x.vars, y.vars);
      EXPECT_EQ(x.pre_differs, y.pre_differs);
      EXPECT_EQ(x.covers, y.covers);
      ASSERT_EQ(x.zone.dim(), y.zone.dim());
      for (int r = 0; r < x.zone.dim(); ++r)
        for (int c = 0; c < x.zone.dim(); ++c)
          EXPECT_EQ(x.zone.at(r, c), y.zone.at(r, c)) << "zone[" << r << "][" << c << "]";
      if (x.pre_differs) {
        ASSERT_EQ(x.pre_zone.dim(), y.pre_zone.dim());
        for (int r = 0; r < x.pre_zone.dim(); ++r)
          for (int c = 0; c < x.pre_zone.dim(); ++c) EXPECT_EQ(x.pre_zone.at(r, c), y.pre_zone.at(r, c));
      }
    }
  }
}

TEST(Artifact, PayloadRoundTrip) {
  const mc::VerificationArtifact original = sample_artifact();
  const std::vector<std::uint8_t> payload = original.serialize();
  ByteReader reader(payload);
  const mc::VerificationArtifact restored = mc::VerificationArtifact::deserialize(reader);
  expect_artifacts_equal(original, restored);
}

TEST(Artifact, StoreLoadRoundTrip) {
  TempCacheDir dir;
  int warnings = 0;
  mc::ArtifactStore store(dir.str(), [&warnings](const std::string&) { ++warnings; });
  const mc::ArtifactKey key{Digest128{0xabcd, 0xef01}};
  EXPECT_FALSE(store.load(key).has_value()) << "missing file is a silent miss";
  EXPECT_EQ(warnings, 0);

  const mc::VerificationArtifact original = sample_artifact();
  ASSERT_TRUE(store.store(key, original));
  const auto restored = store.load(key);
  ASSERT_TRUE(restored.has_value());
  expect_artifacts_equal(original, *restored);
  EXPECT_EQ(warnings, 0);
}

// --- Hardened loading: every corruption is a warned miss, never a crash ----

std::vector<std::uint8_t> stored_file_bytes(const mc::ArtifactStore& store,
                                            const mc::ArtifactKey& key) {
  std::ifstream in(store.path_of(key), std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void write_file_bytes(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(ArtifactHardening, EverySingleBitFlipIsRejected) {
  TempCacheDir dir;
  int warnings = 0;
  mc::ArtifactStore store(dir.str(), [&warnings](const std::string&) { ++warnings; });
  const mc::ArtifactKey key{Digest128{0x5151, 0x2323}};
  ASSERT_TRUE(store.store(key, sample_artifact()));
  const std::vector<std::uint8_t> pristine = stored_file_bytes(store, key);
  ASSERT_FALSE(pristine.empty());

  std::vector<std::uint8_t> fuzzed = pristine;
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      fuzzed[byte] = pristine[byte] ^ static_cast<std::uint8_t>(1u << bit);
      write_file_bytes(store.path_of(key), fuzzed);
      EXPECT_FALSE(store.load(key).has_value())
          << "bit " << bit << " of byte " << byte << " flipped but the artifact loaded";
      fuzzed[byte] = pristine[byte];
    }
  }
  EXPECT_GT(warnings, 0) << "corrupt files must warn";

  write_file_bytes(store.path_of(key), pristine);
  EXPECT_TRUE(store.load(key).has_value()) << "restored pristine bytes must load again";
}

TEST(ArtifactHardening, EveryTruncationIsRejected) {
  TempCacheDir dir;
  int warnings = 0;
  mc::ArtifactStore store(dir.str(), [&warnings](const std::string&) { ++warnings; });
  const mc::ArtifactKey key{Digest128{0x7777, 0x8888}};
  ASSERT_TRUE(store.store(key, sample_artifact()));
  const std::vector<std::uint8_t> pristine = stored_file_bytes(store, key);

  for (std::size_t cut = 0; cut < pristine.size(); ++cut) {
    write_file_bytes(store.path_of(key),
                     std::vector<std::uint8_t>(pristine.begin(),
                                               pristine.begin() + static_cast<long>(cut)));
    EXPECT_FALSE(store.load(key).has_value()) << "prefix of " << cut << " bytes loaded";
  }
  // Trailing garbage is rejected too (payload size no longer matches).
  std::vector<std::uint8_t> padded = pristine;
  padded.push_back(0);
  write_file_bytes(store.path_of(key), padded);
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_GT(warnings, 0);
}

TEST(ArtifactHardening, VersionAndEndiannessMismatchesAreRejected) {
  TempCacheDir dir;
  std::vector<std::string> warnings;
  mc::ArtifactStore store(dir.str(), [&warnings](const std::string& w) { warnings.push_back(w); });
  const mc::ArtifactKey key{Digest128{0x9999, 0xaaaa}};
  ASSERT_TRUE(store.store(key, sample_artifact()));
  const std::vector<std::uint8_t> pristine = stored_file_bytes(store, key);

  // Format version lives right after the 4-byte magic, little-endian.
  std::vector<std::uint8_t> bumped = pristine;
  bumped[4] = static_cast<std::uint8_t>(mc::kArtifactFormatVersion + 1);
  write_file_bytes(store.path_of(key), bumped);
  EXPECT_FALSE(store.load(key).has_value());

  // A stale v3 file (no reach/response memos, no skeleton, no passed store)
  // is rejected the same way: a warned miss that makes the session
  // re-explore and overwrite it with the current format.
  std::vector<std::uint8_t> stale = pristine;
  stale[4] = static_cast<std::uint8_t>(mc::kArtifactFormatVersion - 1);
  write_file_bytes(store.path_of(key), stale);
  EXPECT_FALSE(store.load(key).has_value());

  // The endianness marker follows the version; a byte swap simulates a file
  // written by a foreign-endian machine.
  std::vector<std::uint8_t> foreign = pristine;
  std::swap(foreign[8], foreign[9]);
  write_file_bytes(store.path_of(key), foreign);
  EXPECT_FALSE(store.load(key).has_value());

  ASSERT_EQ(warnings.size(), 3u);
  EXPECT_NE(warnings[0].find("version"), std::string::npos) << warnings[0];
  EXPECT_NE(warnings[1].find("version"), std::string::npos) << warnings[1];
  EXPECT_NE(warnings[2].find("byte order"), std::string::npos) << warnings[2];
}

// --- Session-level persistence ---------------------------------------------

/// Small two-automaton request/response network with an exact bound of 30.
Network tiny_net() {
  Network net("tiny");
  const ClockId t = net.add_clock("t");
  const ChanId req = net.add_channel("req", ChanKind::kBinary);
  const ChanId resp = net.add_channel("resp", ChanKind::kBinary);
  Automaton env("ENV");
  const LocId idle = env.add_location("Idle");
  const LocId await = env.add_location("Await");
  Edge send;
  send.src = idle;
  send.dst = await;
  send.sync = SyncLabel::send(req);
  send.update.resets = {{t, 0}};
  env.add_edge(send);
  Edge recv;
  recv.src = await;
  recv.dst = idle;
  recv.sync = SyncLabel::receive(resp);
  env.add_edge(recv);
  net.add_automaton(std::move(env));
  Automaton m("M");
  const ClockId x = net.add_clock("x");
  const LocId midle = m.add_location("Idle");
  const LocId work = m.add_location("Work", LocKind::kNormal, {cc_le(x, 30)});
  Edge take;
  take.src = midle;
  take.dst = work;
  take.sync = SyncLabel::receive(req);
  take.update.resets = {{x, 0}};
  m.add_edge(take);
  Edge give;
  give.src = work;
  give.dst = midle;
  give.guard.clocks = {cc_ge(x, 1)};
  give.sync = SyncLabel::send(resp);
  m.add_edge(give);
  net.add_automaton(std::move(m));
  return net;
}

mc::BoundQuery tiny_query(const Network& net) {
  mc::BoundQuery q;
  q.pred = mc::at(net, "ENV", "Await");
  q.clock = *net.clock_by_name("t");
  q.limit = 10'000;
  return q;
}

TEST(SessionPersistence, WarmSessionAnswersWithoutExploration) {
  TempCacheDir dir;
  mc::ArtifactStore store(dir.str());
  const Network net = tiny_net();

  mc::VerificationSession cold(net, {});
  EXPECT_FALSE(cold.load(store)) << "first run must miss";
  const mc::MaxClockResult cold_result = cold.max_clock_value(tiny_query(net));
  const mc::VerificationSession::FlagReport cold_flags = cold.check_flags({});
  ASSERT_TRUE(cold_result.bounded);
  EXPECT_EQ(cold_result.bound, 30);
  EXPECT_GT(cold.stats().explorations, 0);
  ASSERT_TRUE(cold.store(store));

  mc::VerificationSession warm(net, {});
  EXPECT_TRUE(warm.load(store));
  EXPECT_TRUE(warm.warm_loaded());
  EXPECT_EQ(warm.stats().entries_loaded, 2) << "one bound entry + the flag sweep";
  const mc::MaxClockResult warm_result = warm.max_clock_value(tiny_query(net));
  const mc::VerificationSession::FlagReport warm_flags = warm.check_flags({});
  EXPECT_EQ(warm.stats().explorations, 0) << "warm session must not explore";
  EXPECT_EQ(warm.stats().explore.states_explored, 0u);

  // Bit-identical service: bounds, traces, and even stats match the cold run.
  EXPECT_EQ(warm_result.bounded, cold_result.bounded);
  EXPECT_EQ(warm_result.bound, cold_result.bound);
  EXPECT_EQ(warm_result.probes, cold_result.probes);
  EXPECT_EQ(warm_result.stats.states_explored, cold_result.stats.states_explored);
  EXPECT_EQ(warm_result.witness.to_string(), cold_result.witness.to_string());
  EXPECT_EQ(warm_flags.deadlock.found, cold_flags.deadlock.found);
  EXPECT_EQ(warm_flags.deadlock.stats.states_stored, cold_flags.deadlock.stats.states_stored);

  // Nothing fresh: store() must skip the write.
  EXPECT_FALSE(warm.store(store));
}

// Warm slack surface: a loaded v3 artifact serves ranked critical traces
// and byte-identical slack reports with ZERO exploration, and a different
// retention depth is a distinct query (its payload differs, so it must not
// share the memo entry).
TEST(SessionPersistence, WarmSlackQueriesServeRankedTracesWithoutExploration) {
  TempCacheDir dir;
  mc::ArtifactStore store(dir.str());
  const Network net = tiny_net();
  mc::BoundQuery query = tiny_query(net);
  query.top_k = 3;
  const std::vector<core::TimingRequirement> reqs = {{"R", "req", "resp", 40}};

  mc::VerificationSession cold(net, {});
  const mc::MaxClockResult cold_result = cold.max_clock_value(query);
  ASSERT_TRUE(cold_result.bounded);
  ASSERT_FALSE(cold_result.ranked.empty());
  const core::SlackReport cold_slack = core::compute_slack_report(reqs, {cold_result}, 10'000);
  ASSERT_TRUE(cold.store(store));

  mc::VerificationSession warm(net, {});
  ASSERT_TRUE(warm.load(store));
  const std::vector<mc::RankedWitness> warm_traces = warm.top_traces(query);
  const mc::MaxClockResult warm_result = warm.max_clock_value(query);
  EXPECT_EQ(warm.stats().explorations, 0) << "warm slack queries must not explore";
  EXPECT_EQ(warm.stats().explore.states_explored, 0u);

  // Byte-identical ranked payload and slack report.
  ASSERT_EQ(warm_traces.size(), cold_result.ranked.size());
  for (std::size_t i = 0; i < warm_traces.size(); ++i) {
    EXPECT_EQ(warm_traces[i].value, cold_result.ranked[i].value);
    EXPECT_EQ(warm_traces[i].trace.to_string(), cold_result.ranked[i].trace.to_string());
  }
  EXPECT_EQ(warm_result.witness_consts, cold_result.witness_consts);
  const core::SlackReport warm_slack = core::compute_slack_report(reqs, {warm_result}, 10'000);
  EXPECT_EQ(warm_slack.to_string(3), cold_slack.to_string(3));
  EXPECT_EQ(warm_slack.min_slack_ms, 40 - cold_result.bound);

  // A different top_k is a different query: the memo must not serve the
  // 3-deep payload for it, so fresh exploration happens.
  mc::BoundQuery shallow = query;
  shallow.top_k = 1;
  const mc::MaxClockResult shallow_result = warm.max_clock_value(shallow);
  EXPECT_GT(warm.stats().explorations, 0) << "different retention depth must re-explore";
  EXPECT_EQ(shallow_result.bound, cold_result.bound);
  EXPECT_EQ(shallow_result.ranked.size(), 1u);
}

TEST(SessionPersistence, WarmHitSurvivesRenamesAndDeclReorder) {
  TempCacheDir dir;
  mc::ArtifactStore store(dir.str());
  const Network net = tiny_net();
  mc::VerificationSession cold(net, {});
  const mc::MaxClockResult cold_result = cold.max_clock_value(tiny_query(net));
  ASSERT_TRUE(cold.store(store));

  // The "edited" model: same semantics, new names. (tiny_net declares t
  // before x; here the reordered declarations and renames must still land
  // on the same canonical key.)
  Network edited("tiny-rewritten");
  const ClockId x2 = edited.add_clock("worker_clock");
  const ClockId t2 = edited.add_clock("probe_clock");
  const ChanId resp2 = edited.add_channel("response", ChanKind::kBinary);
  const ChanId req2 = edited.add_channel("request", ChanKind::kBinary);
  Automaton env("Environment");
  const LocId idle = env.add_location("Quiet");
  const LocId await = env.add_location("Waiting");
  Edge send;
  send.src = idle;
  send.dst = await;
  send.sync = SyncLabel::send(req2);
  send.update.resets = {{t2, 0}};
  env.add_edge(send);
  Edge recv;
  recv.src = await;
  recv.dst = idle;
  recv.sync = SyncLabel::receive(resp2);
  env.add_edge(recv);
  edited.add_automaton(std::move(env));
  Automaton m("Machine");
  const LocId midle = m.add_location("Rest");
  const LocId work = m.add_location("Busy", LocKind::kNormal, {cc_le(x2, 30)});
  Edge take;
  take.src = midle;
  take.dst = work;
  take.sync = SyncLabel::receive(req2);
  take.update.resets = {{x2, 0}};
  m.add_edge(take);
  Edge give;
  give.src = work;
  give.dst = midle;
  give.guard.clocks = {cc_ge(x2, 1)};
  give.sync = SyncLabel::send(resp2);
  m.add_edge(give);
  edited.add_automaton(std::move(m));

  mc::VerificationSession warm(edited, {});
  EXPECT_TRUE(warm.load(store)) << "rename/reorder edit must still hit";
  mc::BoundQuery q;
  q.pred = mc::at(edited, "Environment", "Waiting");
  q.clock = t2;
  q.limit = 10'000;
  const mc::MaxClockResult warm_result = warm.max_clock_value(q);
  EXPECT_EQ(warm.stats().explorations, 0);
  EXPECT_EQ(warm_result.bound, cold_result.bound);
}

TEST(SessionPersistence, CorruptArtifactFallsBackToExploration) {
  TempCacheDir dir;
  int warnings = 0;
  mc::ArtifactStore store(dir.str(), [&warnings](const std::string&) { ++warnings; });
  const Network net = tiny_net();
  {
    mc::VerificationSession cold(net, {});
    cold.max_clock_value(tiny_query(net));
    ASSERT_TRUE(cold.store(store));
  }
  // Corrupt the stored file in the middle of the payload.
  mc::VerificationSession probe_session(net, {});
  const std::string path = store.path_of(probe_session.cache_key());
  std::vector<std::uint8_t> bytes = stored_file_bytes(store, probe_session.cache_key());
  ASSERT_GT(bytes.size(), 60u);
  bytes[bytes.size() / 2] ^= 0x10;
  write_file_bytes(path, bytes);

  EXPECT_FALSE(probe_session.load(store));
  EXPECT_EQ(warnings, 1);
  const mc::MaxClockResult result = probe_session.max_clock_value(tiny_query(net));
  ASSERT_TRUE(result.bounded);
  EXPECT_EQ(result.bound, 30);
  EXPECT_GT(probe_session.stats().explorations, 0) << "must have re-explored";
}

// --- Pipeline-level warm/cold differential ---------------------------------

std::string summary_without_cache_lines(const core::FrameworkResult& result) {
  std::istringstream in(result.summary());
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line))
    if (line.rfind("[cache]", 0) != 0) out << line << "\n";
  return out.str();
}

TEST(WarmColdDifferential, QuickstartPipelineIsBitIdenticalWarm) {
  const std::string model_dir = find_model_dir();
  if (model_dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  const Network pim = lang::parse_model(read_file(model_dir + "quickstart.psv"));
  const core::PimInfo info = core::analyze_pim(pim);
  const core::ImplementationScheme scheme = lang::parse_scheme(read_file(model_dir + "fast.pss"));
  const core::TimingRequirement req{"QREQ", "Req", "Ack", 80};

  TempCacheDir dir;
  core::FrameworkOptions options;
  options.cache_dir = dir.str();

  const core::FrameworkResult cold = core::run_framework(pim, info, scheme, req, options);
  const core::FrameworkResult warm = core::run_framework(pim, info, scheme, req, options);

  // Bit-identical bounds, traces (via the rendered report), and verdicts.
  EXPECT_EQ(summary_without_cache_lines(cold), summary_without_cache_lines(warm));
  EXPECT_EQ(cold.bounds.to_string(), warm.bounds.to_string());
  EXPECT_EQ(cold.constraints.to_string(), warm.constraints.to_string());
  EXPECT_EQ(cold.psm_meets_original, warm.psm_meets_original);
  EXPECT_EQ(cold.psm_meets_relaxed, warm.psm_meets_relaxed);
  EXPECT_EQ(cold.pim.max_delay, warm.pim.max_delay);

  // The warm run's exploring stages served everything from the cache.
  for (const core::StageStats& stage : warm.stages) {
    if (stage.name == "transform") continue;
    EXPECT_EQ(stage.explore.states_explored, 0u) << stage.name;
    EXPECT_EQ(stage.explorations, 0) << stage.name;
    EXPECT_STREQ(stage.cache.state(), "warm") << stage.name;
    EXPECT_EQ(stage.cache.misses, 0) << stage.name;
  }
  // And the cold run reported cold stages with stores.
  int cold_stores = 0;
  for (const core::StageStats& stage : cold.stages) {
    if (stage.name == "transform") continue;
    EXPECT_STREQ(stage.cache.state(), "cold") << stage.name;
    cold_stores += stage.cache.stores;
  }
  EXPECT_GT(cold_stores, 0);

  // A run without a cache dir reports disabled stages and no [cache] lines.
  const core::FrameworkResult disabled = core::run_framework(pim, info, scheme, req, {});
  for (const core::StageStats& stage : disabled.stages)
    EXPECT_STREQ(stage.cache.state(), "disabled") << stage.name;
  EXPECT_EQ(disabled.summary().find("[cache]"), std::string::npos);
  EXPECT_EQ(summary_without_cache_lines(cold), disabled.summary());
}

TEST(WarmColdDifferential, SchemeEditOnlyInvalidatesDownstreamStages) {
  const std::string model_dir = find_model_dir();
  if (model_dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  const Network pim = lang::parse_model(read_file(model_dir + "quickstart.psv"));
  const core::PimInfo info = core::analyze_pim(pim);
  core::ImplementationScheme scheme = lang::parse_scheme(read_file(model_dir + "fast.pss"));
  const core::TimingRequirement req{"QREQ", "Req", "Ack", 80};

  TempCacheDir dir;
  core::FrameworkOptions options;
  options.cache_dir = dir.str();
  core::run_framework(pim, info, scheme, req, options);

  // Edit the scheme: the PSM changes, the PIM does not.
  scheme.outputs.begin()->second.delay_max += 1;
  const core::FrameworkResult rerun = core::run_framework(pim, info, scheme, req, options);
  int psm_explorations = 0;
  for (const core::StageStats& stage : rerun.stages) {
    if (stage.name == "pim-verification") {
      EXPECT_STREQ(stage.cache.state(), "warm") << "PIM stage must survive a scheme edit";
      EXPECT_EQ(stage.explore.states_explored, 0u);
    } else if (stage.name == "constraints" || stage.name == "bounds") {
      EXPECT_STREQ(stage.cache.state(), "cold") << stage.name << " must re-verify";
      psm_explorations += stage.explorations;
    }
  }
  // The batch planner answers constraints AND bounds from one combined
  // sweep (attributed to the constraints stage), so the re-verification
  // shows up as fresh exploration across the two stages together.
  EXPECT_GT(psm_explorations, 0) << "scheme edit must re-explore the PSM";
}

}  // namespace
}  // namespace psv
