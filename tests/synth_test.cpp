// Scheme-synthesis tests (core/synth.h) on the quickstart lattice
// (examples/models/quickstart.psv x fast_sweep.pss, 8 candidates): frontier
// byte-identity across worker counts, visit orders and pruning; pruned
// candidates spot-re-verified cold as genuinely failing; warm-start sharing;
// cooperative cancellation; request validation.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/pim.h"
#include "core/report_serde.h"
#include "core/service.h"
#include "core/synth.h"
#include "lang/model_parser.h"
#include "lang/scheme_parser.h"
#include "model_paths.h"
#include "util/error.h"

namespace psv {
namespace {

using psv::testing::find_model_dir;
using psv::testing::read_file;

/// Quickstart synthesis sources: the 8-candidate io.period sweep.
struct Sources {
  std::string model;
  std::string template_source;
  bool ok = false;

  Sources() {
    const std::string dir = find_model_dir();
    if (dir.empty()) return;
    model = read_file(dir + "quickstart.psv");
    template_source = read_file(dir + "fast_sweep.pss");
    ok = true;
  }

  core::SynthRequest request(unsigned workers = 0, std::uint64_t visit_seed = 0,
                             bool prune = true) const {
    core::SourceSynthRequest source;
    source.model_source = model;
    source.template_source = template_source;
    source.requirements = {{"QREQ", "Req", "Ack", 80}};
    source.synth.workers = workers;
    source.synth.visit_seed = visit_seed;
    source.synth.prune = prune;
    return core::to_synth_request(source);
  }
};

TEST(SchemeTemplate, EnumeratesTheSweepLattice) {
  Sources src;
  if (!src.ok) GTEST_SKIP() << "example model files not found from test cwd";
  const core::SchemeTemplate tmpl = lang::parse_scheme_template(src.template_source);
  ASSERT_EQ(tmpl.axes.size(), 1u);
  EXPECT_EQ(tmpl.axes.front().label(), "output.Ack.delay_max");
  EXPECT_TRUE(tmpl.axes.front().monotone_worse_up());
  EXPECT_EQ(tmpl.axes.front().lo, 3);
  EXPECT_EQ(tmpl.axes.front().hi, 38);
  EXPECT_EQ(tmpl.axes.front().step, 5);
  ASSERT_EQ(tmpl.candidate_count(), 8u);

  // The base scheme reads every swept field at LO; candidate k sets the
  // axis to lo + k*step.
  EXPECT_EQ(tmpl.base.outputs.at("Ack").delay_max, 3);
  const std::vector<std::int32_t> third = tmpl.values_at(3);
  ASSERT_EQ(third.size(), 1u);
  EXPECT_EQ(third.front(), 18);
  EXPECT_EQ(tmpl.instantiate(third).outputs.at("Ack").delay_max, 18);
  EXPECT_EQ(tmpl.candidate_name(third), "IS1-fast[output.Ack.delay_max=18]");
}

TEST(SchemeSynthesizer, FrontierIdenticalAcrossWorkersOrdersAndPruning) {
  Sources src;
  if (!src.ok) GTEST_SKIP() << "example model files not found from test cwd";

  std::string reference;
  for (const unsigned workers : {1u, 2u}) {
    for (const std::uint64_t seed : {0ull, 1ull, 2ull}) {
      core::Verifier verifier;
      core::SchemeSynthesizer synthesizer(verifier);
      const core::SynthReport report = synthesizer.run(src.request(workers, seed));
      EXPECT_EQ(report.stats.candidates_total, 8u);
      EXPECT_EQ(report.stats.explored_cold + report.stats.explored_warm +
                    report.stats.pruned_analytic + report.stats.pruned_dominated,
                8u);
      if (reference.empty()) reference = report.frontier_text();
      EXPECT_EQ(report.frontier_text(), reference)
          << "workers=" << workers << " seed=" << seed;
    }
  }

  // Pruning only skips work, never changes the frontier.
  core::Verifier verifier;
  core::SchemeSynthesizer synthesizer(verifier);
  const core::SynthReport unpruned = synthesizer.run(src.request(1, 0, /*prune=*/false));
  EXPECT_EQ(unpruned.stats.pruned_analytic + unpruned.stats.pruned_dominated, 0u);
  EXPECT_EQ(unpruned.frontier_text(), reference);
}

TEST(SchemeSynthesizer, PrunedCandidatesReverifyColdAsFailing) {
  Sources src;
  if (!src.ok) GTEST_SKIP() << "example model files not found from test cwd";

  core::Verifier verifier;
  core::SchemeSynthesizer synthesizer(verifier);
  const core::SynthRequest request = src.request(1);
  const core::SynthReport report = synthesizer.run(request);
  ASSERT_GT(report.stats.pruned_dominated, 0u)
      << "the quickstart sweep must exercise dominance pruning";

  // Every pruned candidate, re-verified cold through a fresh Verifier, must
  // genuinely fail: a constraint violation or a requirement over its
  // ORIGINAL bound. This is the soundness half of the pruning story.
  for (const core::CandidateOutcome& c : report.candidates) {
    if (c.status != core::CandidateOutcome::Status::kPrunedDominated &&
        c.status != core::CandidateOutcome::Status::kPrunedAnalytic)
      continue;
    core::VerifyRequest cold;
    cold.pim = request.pim;
    cold.info = request.info;
    cold.schemes = {request.tmpl.instantiate(c.values)};
    cold.requirements = request.requirements;
    cold.options = request.options;
    core::Verifier cold_verifier;
    const core::VerifyReport vrep = cold_verifier.verify(cold);
    const core::SchemeVerification& sv = vrep.schemes.front();
    bool satisfies = sv.schedulability.ok() && sv.constraints.all_hold();
    for (const core::RequirementResult& r : sv.requirements)
      satisfies = satisfies && r.psm_meets_original;
    EXPECT_FALSE(satisfies) << c.name << " was pruned but satisfies every requirement";
  }
}

TEST(SchemeSynthesizer, WarmStartsEveryExplorationAfterTheFirst) {
  Sources src;
  if (!src.ok) GTEST_SKIP() << "example model files not found from test cwd";

  core::Verifier verifier;
  core::SchemeSynthesizer synthesizer(verifier);
  const core::SynthReport report = synthesizer.run(src.request(1));
  EXPECT_EQ(report.stats.explored_cold, 1u);
  EXPECT_GE(report.stats.explored_warm, 1u);

  std::uint64_t reused = 0;
  for (const core::CandidateOutcome& c : report.candidates)
    reused += c.explore.warm_states_reused;
  EXPECT_GT(reused, 0u) << "warm candidates must adopt pinned-ancestor states";
  EXPECT_GT(report.stats.fresh_states, 0u);
}

TEST(SchemeSynthesizer, FeasibilityFrontierNamesTheTightestWitness) {
  Sources src;
  if (!src.ok) GTEST_SKIP() << "example model files not found from test cwd";

  core::Verifier verifier;
  core::SchemeSynthesizer synthesizer(verifier);
  const core::SynthReport report = synthesizer.run(src.request(1));
  ASSERT_EQ(report.feasibility.size(), 1u);
  const core::FeasibilityEntry& entry = report.feasibility.front();
  EXPECT_EQ(entry.requirement, "QREQ");
  ASSERT_TRUE(entry.bounded);

  // The reported minimum matches the explored candidates, and its witness
  // is a candidate that attains it.
  std::int64_t tightest = -1;
  for (const core::CandidateOutcome& c : report.candidates) {
    if (c.status != core::CandidateOutcome::Status::kExploredCold &&
        c.status != core::CandidateOutcome::Status::kExploredWarm)
      continue;
    if (!c.constraints_ok || c.bounded.empty() || c.bounded.front() == 0) continue;
    if (tightest < 0 || c.delays.front() < tightest) tightest = c.delays.front();
  }
  EXPECT_EQ(entry.tightest_ms, tightest);
  bool witness_attains = false;
  for (const core::CandidateOutcome& c : report.candidates)
    if (c.name == entry.witness && !c.delays.empty() && c.delays.front() == tightest)
      witness_attains = true;
  EXPECT_TRUE(witness_attains) << "witness " << entry.witness << " does not attain "
                               << tightest << "ms";
}

TEST(Verifier, PreFiredCancelTokenAbortsWithKCancelled) {
  Sources src;
  if (!src.ok) GTEST_SKIP() << "example model files not found from test cwd";

  core::SynthRequest request = src.request(1);
  core::VerifyRequest verify;
  verify.pim = request.pim;
  verify.info = request.info;
  verify.schemes = {request.tmpl.instantiate(request.tmpl.values_at(0))};
  verify.requirements = request.requirements;
  verify.options = request.options;
  auto token = std::make_shared<std::atomic<bool>>(true);
  verify.options.explore.cancel = token;

  core::Verifier verifier;
  EXPECT_THROW(
      {
        try {
          (void)verifier.verify(verify);
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), ErrorCode::kCancelled);
          throw;
        }
      },
      Error);
}

TEST(SchemeSynthesizer, RejectsInvalidRequests) {
  Sources src;
  if (!src.ok) GTEST_SKIP() << "example model files not found from test cwd";

  core::Verifier verifier;
  core::SchemeSynthesizer synthesizer(verifier);

  core::SynthRequest no_requirements = src.request(1);
  no_requirements.requirements.clear();
  EXPECT_THROW(
      {
        try {
          (void)synthesizer.run(no_requirements);
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), ErrorCode::kModel);
          throw;
        }
      },
      Error);

  core::SynthRequest bad_channel = src.request(1);
  bad_channel.requirements = {{"BAD", "NoSuchInput", "Ack", 80}};
  EXPECT_THROW(
      {
        try {
          (void)synthesizer.run(bad_channel);
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), ErrorCode::kModel);
          throw;
        }
      },
      Error);
}

}  // namespace
}  // namespace psv
