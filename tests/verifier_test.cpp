// Batch-vs-sequential equivalence proof on the pump model (exhaustive
// label): a 3-requirement batch must produce bit-identical bounds and
// verdicts to three independent run_framework() calls, while exploring the
// PSM state space ONCE (stages 3-5 combined) instead of once per pipeline.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/framework.h"
#include "core/service.h"
#include "lang/model_parser.h"
#include "lang/scheme_parser.h"
#include "mc/session.h"
#include "model_paths.h"

namespace psv {
namespace {

using psv::testing::find_model_dir;
using psv::testing::read_file;

TEST(VerifierPumpEquivalence, ThreeRequirementBatchMatchesThreeRuns) {
  const std::string dir = find_model_dir();
  if (dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  const ta::Network pim = lang::parse_model(read_file(dir + "pump.psv"));
  const core::PimInfo info = core::analyze_pim(pim);
  const core::ImplementationScheme scheme = lang::parse_scheme(read_file(dir + "board.pss"));
  const std::vector<core::TimingRequirement> reqs = {
      {"REQ1", "BolusReq", "StartInfusion", 500},
      {"REQ2", "BolusReq", "StopInfusion", 2500},
      {"REQ3", "BolusReq", "StartInfusion", 1200},
  };

  core::Verifier verifier;
  core::VerifyRequest request;
  request.pim = pim;
  request.info = info;
  request.schemes = {scheme};
  request.requirements = reqs;
  const core::VerifyReport report = verifier.verify(request);
  ASSERT_EQ(report.schemes.size(), 1u);
  const core::SchemeVerification& sv = report.schemes.front();
  ASSERT_EQ(sv.requirements.size(), reqs.size());

  // --- StageStats: the whole batch explored the PSM once. -------------------
  ASSERT_EQ(report.pim_stages.size(), 1u);
  EXPECT_EQ(report.pim_stages.front().explorations, 1)
      << "all three PIM verdicts must come from one instrumented sweep";
  int psm_explorations = 0;
  std::size_t psm_states_explored = 0;
  for (const core::VerifyStageStats& stage : sv.stages) {
    if (stage.name == "constraints" || stage.name == "bounds") {
      psm_explorations += stage.explorations;
      psm_states_explored += stage.explore.states_explored;
    }
  }
  EXPECT_EQ(psm_explorations, 1)
      << "stages 3-5 must answer constraints AND every bound from one combined sweep";
  EXPECT_GT(psm_states_explored, 0u);

  // --- Bit-identical bounds/verdicts vs three independent pipelines. --------
  std::size_t sequential_psm_explorations = 0;
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    const core::FrameworkResult single = core::run_framework(pim, info, scheme, reqs[r]);
    const core::RequirementResult& batched = sv.requirements[r];
    EXPECT_EQ(single.bounds.to_string(), batched.bounds.to_string()) << reqs[r].name;
    EXPECT_EQ(single.pim.max_delay, batched.pim.max_delay) << reqs[r].name;
    EXPECT_EQ(single.pim.holds, batched.pim.holds) << reqs[r].name;
    EXPECT_EQ(single.pim.bounded, batched.pim.bounded) << reqs[r].name;
    EXPECT_EQ(single.psm_meets_original, batched.psm_meets_original) << reqs[r].name;
    EXPECT_EQ(single.psm_meets_relaxed, batched.psm_meets_relaxed) << reqs[r].name;
    ASSERT_EQ(single.constraints.checks.size(), sv.constraints.checks.size()) << reqs[r].name;
    for (std::size_t c = 0; c < single.constraints.checks.size(); ++c) {
      EXPECT_EQ(single.constraints.checks[c].id, sv.constraints.checks[c].id);
      EXPECT_EQ(single.constraints.checks[c].holds, sv.constraints.checks[c].holds)
          << sv.constraints.checks[c].name;
    }
    for (const core::StageStats& stage : single.stages)
      if (stage.name == "constraints" || stage.name == "bounds")
        sequential_psm_explorations += static_cast<std::size_t>(stage.explorations);
  }
  // Three sequential pipelines each pay for their own sweep.
  EXPECT_GE(sequential_psm_explorations, reqs.size());

  // Table-I anchors: the shared per-variable bounds must be the published
  // 490/440 figures in the batch exactly as in every single run.
  const core::BoundAnalysis& bounds = sv.requirements.front().bounds;
  ASSERT_FALSE(bounds.input_delays.empty());
  EXPECT_EQ(bounds.input_delays.front().verified, 490);
  ASSERT_FALSE(bounds.output_delays.empty());
  EXPECT_EQ(bounds.output_delays.front().verified, 440);
}

TEST(VerifierPumpEquivalence, SessionStatsExposeSharedWork) {
  const std::string dir = find_model_dir();
  if (dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  const ta::Network pim = lang::parse_model(read_file(dir + "pump.psv"));
  const core::PimInfo info = core::analyze_pim(pim);
  const core::ImplementationScheme scheme = lang::parse_scheme(read_file(dir + "board.pss"));
  const std::vector<core::TimingRequirement> reqs = {
      {"REQ1", "BolusReq", "StartInfusion", 500},
      {"REQ2", "BolusReq", "StopInfusion", 2500},
      {"REQ3", "BolusReq", "StartInfusion", 1200},
  };

  // Drive the batch planner's layers directly (the service is a thin
  // orchestration of exactly these calls) and read the SessionStats.
  const core::PsmArtifacts psm = core::transform(pim, info, scheme);
  core::InstrumentedPsmBatch instrumented = core::instrument_psm_for_requirements(psm, reqs);
  ASSERT_EQ(instrumented.mc_probes.size(), reqs.size());
  mc::VerificationSession session(std::move(instrumented.net), {});
  const core::BoundQueryPlan plan = core::plan_bound_queries(
      psm, instrumented.mc_probes, reqs, {500, 1700, 500}, 1'000'000);
  const mc::VerificationSession::BatchReport batch =
      session.verify_batch(plan.queries, core::constraint_flag_vars(psm));
  EXPECT_EQ(session.stats().explorations, 1)
      << "flags + every bound of 3 requirements from ONE exploration";
  EXPECT_TRUE(batch.flags.shared_sweep);
  ASSERT_EQ(batch.bounds.size(), plan.queries.size());
  // Re-asking anything is free now.
  const int explorations = session.stats().explorations;
  session.max_clock_values(plan.queries);
  session.check_flags(core::constraint_flag_vars(psm));
  EXPECT_EQ(session.stats().explorations, explorations);
  EXPECT_GT(session.stats().cache_hits, 0);
}

}  // namespace
}  // namespace psv
