// Tests for the analytic schedulability pre-checks (§V conditions).
#include "core/schedulability.h"

#include <gtest/gtest.h>

#include "core/constraints.h"
#include "core/transform.h"

namespace psv::core {
namespace {

using namespace psv::ta;

// Reuses the ping/pong shape: M replies within [20, 100] of an input; ENV
// paces requests by `gap`.
Network paced_pim(std::int32_t gap) {
  Network net("paced");
  const ClockId x = net.add_clock("x");
  const ClockId env_x = net.add_clock("env_x");
  const ChanId ping = net.add_channel("m_Ping", ChanKind::kBinary);
  const ChanId pong = net.add_channel("c_Pong", ChanKind::kBinary);

  Automaton m("M");
  const LocId idle = m.add_location("Idle");
  const LocId busy = m.add_location("Busy", LocKind::kNormal, {cc_le(x, 100)});
  Edge take;
  take.src = idle;
  take.dst = busy;
  take.sync = SyncLabel::receive(ping);
  take.update.resets = {{x, 0}};
  m.add_edge(std::move(take));
  Edge reply;
  reply.src = busy;
  reply.dst = idle;
  reply.guard.clocks = {cc_ge(x, 20)};
  reply.sync = SyncLabel::send(pong);
  m.add_edge(std::move(reply));
  net.add_automaton(std::move(m));

  Automaton env("ENV");
  const LocId eidle = env.add_location("Idle");
  const LocId await = env.add_location("Await");
  Edge send;
  send.src = eidle;
  send.dst = await;
  send.guard.clocks = {cc_ge(env_x, gap)};
  send.sync = SyncLabel::send(ping);
  send.update.resets = {{env_x, 0}};
  env.add_edge(std::move(send));
  Edge recv;
  recv.src = await;
  recv.dst = eidle;
  recv.sync = SyncLabel::receive(pong);
  recv.update.resets = {{env_x, 0}};
  env.add_edge(std::move(recv));
  net.add_automaton(std::move(env));
  return net;
}

ImplementationScheme paced_scheme(std::int32_t interarrival) {
  ImplementationScheme is = example_is1({"Ping"}, {"Pong"});
  is.inputs.at("Ping").delay_min = 1;
  is.inputs.at("Ping").delay_max = 3;
  is.inputs.at("Ping").min_interarrival = interarrival;
  is.io.period = 20;
  is.io.read_stage_max = 2;
  is.io.compute_stage_max = 2;
  is.io.write_stage_max = 2;
  is.io.buffer_size = 2;
  return is;
}

TEST(WorstCaseAdmission, InterruptAndPolling) {
  InputSpec spec;
  spec.read = ReadMechanism::kInterrupt;
  spec.delay_max = 3;
  EXPECT_EQ(worst_case_admission(spec), 3);
  spec.read = ReadMechanism::kPolling;
  spec.polling_interval = 50;
  EXPECT_EQ(worst_case_admission(spec), 53);
}

TEST(EmissionWindows, ComputedFromGuardAndInvariant) {
  Network pim = paced_pim(60);
  PimInfo info = analyze_pim(pim);
  const auto windows = emission_windows(pim, info);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].output, "Pong");
  EXPECT_EQ(windows[0].location, "Busy");
  EXPECT_EQ(windows[0].width, 80);  // invariant 100 - guard 20
}

TEST(EmissionWindows, UnboundedWithoutInvariant) {
  Network pim = paced_pim(60);
  PimInfo info = analyze_pim(pim);
  // Strip the invariant by rebuilding M's location... simpler: a second
  // model without it.
  Network net("free");
  net.add_clock("x");
  const ChanId ping = net.add_channel("m_Ping", ChanKind::kBinary);
  const ChanId pong = net.add_channel("c_Pong", ChanKind::kBinary);
  Automaton m("M");
  const LocId idle = m.add_location("Idle");
  const LocId busy = m.add_location("Busy");
  Edge take;
  take.src = idle;
  take.dst = busy;
  take.sync = SyncLabel::receive(ping);
  m.add_edge(std::move(take));
  Edge reply;
  reply.src = busy;
  reply.dst = idle;
  reply.sync = SyncLabel::send(pong);
  m.add_edge(std::move(reply));
  net.add_automaton(std::move(m));
  Automaton env("ENV");
  const LocId e0 = env.add_location("Idle");
  Edge s;
  s.src = e0;
  s.dst = e0;
  s.sync = SyncLabel::send(ping);
  env.add_edge(std::move(s));
  Edge r;
  r.src = e0;
  r.dst = e0;
  r.sync = SyncLabel::receive(pong);
  env.add_edge(std::move(r));
  net.add_automaton(std::move(env));

  const auto windows = emission_windows(net, analyze_pim(net));
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].width, -1);
}

TEST(Schedulability, CleanSchemePasses) {
  Network pim = paced_pim(60);
  PimInfo info = analyze_pim(pim);
  SchedulabilityReport r = check_schedulability(pim, info, paced_scheme(60));
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(Schedulability, SlowAdmissionViolatesC1) {
  Network pim = paced_pim(10);
  PimInfo info = analyze_pim(pim);
  ImplementationScheme is = paced_scheme(10);
  auto& spec = is.inputs.at("Ping");
  spec.signal = SignalType::kSustainedUntilRead;
  spec.read = ReadMechanism::kPolling;
  spec.polling_interval = 30;  // admission 33 > inter-arrival 10
  SchedulabilityReport r = check_schedulability(pim, info, is);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.to_string().find("C1"), std::string::npos);
}

TEST(Schedulability, SmallBufferViolatesC2) {
  Network pim = paced_pim(5);
  PimInfo info = analyze_pim(pim);
  ImplementationScheme is = paced_scheme(5);
  is.io.buffer_size = 1;  // read gap 22ms / inter-arrival 5ms -> burst 5
  SchedulabilityReport r = check_schedulability(pim, info, is);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.to_string().find("C2"), std::string::npos);
}

TEST(Schedulability, NarrowEmissionWindowFlagged) {
  Network pim = paced_pim(300);
  PimInfo info = analyze_pim(pim);
  ImplementationScheme is = paced_scheme(300);
  // Window [20, 100] is 80ms wide; with a 110ms period the write stage
  // after the (always too-early) read-cycle write lands at x >= 110 > 100.
  is.io.period = 110;
  SchedulabilityReport r = check_schedulability(pim, info, is);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.to_string().find("emission"), std::string::npos);

  // And the model checker agrees: this scheme produces a timelock.
  PsmArtifacts psm = transform(pim, info, is);
  ConstraintReport mc_report = check_constraints(psm);
  EXPECT_FALSE(mc_report.all_hold())
      << "the analytic emission finding must correspond to a real timelock\n"
      << mc_report.to_string();
}

TEST(Schedulability, ConservativeWarningCanBeMcClean) {
  // Period 90 also trips the analytic check (write latency 96 > window 80),
  // but the second write stage still lands at x in [90, 96] <= 100 — the
  // authoritative model checker proves this scheme safe. The analytic
  // check is a conservative pre-filter, not the final verdict.
  Network pim = paced_pim(300);
  PimInfo info = analyze_pim(pim);
  ImplementationScheme is = paced_scheme(300);
  is.io.period = 90;
  EXPECT_FALSE(check_schedulability(pim, info, is).ok());
  PsmArtifacts psm = transform(pim, info, is);
  EXPECT_TRUE(check_constraints(psm).all_hold());
}

TEST(Schedulability, MissingInterarrivalWarnsOnly) {
  Network pim = paced_pim(60);
  PimInfo info = analyze_pim(pim);
  ImplementationScheme is = paced_scheme(0);  // no assumption declared
  SchedulabilityReport r = check_schedulability(pim, info, is);
  EXPECT_TRUE(r.ok());  // warnings only
  EXPECT_FALSE(r.findings.empty());
  EXPECT_NE(r.to_string().find("warning"), std::string::npos);
}

}  // namespace
}  // namespace psv::core
