// Tests for the integer/boolean expression ASTs.
#include "ta/expr.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/error.h"

namespace psv::ta {

using psv::Error;
namespace {

std::vector<std::int64_t> env(std::initializer_list<std::int64_t> vals) { return vals; }

TEST(IntExpr, ConstantsEvaluate) {
  EXPECT_EQ(IntExpr::constant(42).eval({}), 42);
  EXPECT_EQ(IntExpr::constant(-7).eval({}), -7);
}

TEST(IntExpr, VariablesReadEnvironment) {
  const auto e = env({10, 20, 30});
  EXPECT_EQ(IntExpr::var(0).eval(e), 10);
  EXPECT_EQ(IntExpr::var(2).eval(e), 30);
}

TEST(IntExpr, Arithmetic) {
  const auto e = env({5, 3});
  const IntExpr x = IntExpr::var(0);
  const IntExpr y = IntExpr::var(1);
  EXPECT_EQ((x + y).eval(e), 8);
  EXPECT_EQ((x - y).eval(e), 2);
  EXPECT_EQ((x * y).eval(e), 15);
  EXPECT_EQ((x + IntExpr::constant(1) - y * IntExpr::constant(2)).eval(e), 0);
}

TEST(IntExpr, CollectVars) {
  const IntExpr e = IntExpr::var(1) + IntExpr::var(3) * IntExpr::constant(2);
  std::vector<VarId> vars;
  e.collect_vars(vars);
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_NE(std::find(vars.begin(), vars.end(), 1), vars.end());
  EXPECT_NE(std::find(vars.begin(), vars.end(), 3), vars.end());
}

TEST(IntExpr, IsConst) {
  EXPECT_TRUE(IntExpr::constant(0).is_const(0));
  EXPECT_FALSE(IntExpr::constant(1).is_const(0));
  EXPECT_FALSE(IntExpr::var(0).is_const(0));
}

TEST(IntExpr, ToString) {
  const auto namer = [](VarId v) { return std::string("var") + std::to_string(v); };
  EXPECT_EQ(IntExpr::constant(5).to_string(namer), "5");
  EXPECT_EQ(IntExpr::var(2).to_string(namer), "var2");
  EXPECT_EQ((IntExpr::var(0) + IntExpr::constant(1)).to_string(namer), "(var0 + 1)");
}

TEST(IntExpr, NegativeVarIdRejected) { EXPECT_THROW(IntExpr::var(-1), Error); }

TEST(BoolExpr, TruthAndFalsity) {
  EXPECT_TRUE(BoolExpr::truth().eval({}));
  EXPECT_FALSE(BoolExpr::falsity().eval({}));
  EXPECT_TRUE(BoolExpr::truth().is_trivially_true());
  EXPECT_FALSE(BoolExpr::falsity().is_trivially_true());
}

TEST(BoolExpr, AllComparisonOperators) {
  const auto e = env({5});
  const IntExpr x = IntExpr::var(0);
  const IntExpr five = IntExpr::constant(5);
  const IntExpr six = IntExpr::constant(6);
  EXPECT_TRUE(BoolExpr::cmp(CmpOp::kEq, x, five).eval(e));
  EXPECT_TRUE(BoolExpr::cmp(CmpOp::kLe, x, five).eval(e));
  EXPECT_TRUE(BoolExpr::cmp(CmpOp::kGe, x, five).eval(e));
  EXPECT_TRUE(BoolExpr::cmp(CmpOp::kLt, x, six).eval(e));
  EXPECT_FALSE(BoolExpr::cmp(CmpOp::kGt, x, five).eval(e));
  EXPECT_TRUE(BoolExpr::cmp(CmpOp::kNe, x, six).eval(e));
}

TEST(BoolExpr, Connectives) {
  const auto e = env({1, 0});
  const BoolExpr a = var_eq(0, 1);
  const BoolExpr b = var_eq(1, 1);
  EXPECT_TRUE((a || b).eval(e));
  EXPECT_FALSE((a && b).eval(e));
  EXPECT_TRUE((a && !b).eval(e));
  EXPECT_FALSE((!a).eval(e));
}

TEST(BoolExpr, AndWithTruthSimplifies) {
  const BoolExpr a = var_eq(0, 1);
  const BoolExpr both = BoolExpr::truth() && a;
  // Trivially-true conjuncts are dropped at construction.
  EXPECT_EQ(both.kind(), BoolExpr::Kind::kCmp);
}

TEST(BoolExpr, ConvenienceConstructors) {
  const auto e = env({7});
  EXPECT_TRUE(var_eq(0, 7).eval(e));
  EXPECT_TRUE(var_ne(0, 8).eval(e));
  EXPECT_TRUE(var_lt(0, 8).eval(e));
  EXPECT_TRUE(var_le(0, 7).eval(e));
  EXPECT_TRUE(var_ge(0, 7).eval(e));
  EXPECT_TRUE(var_gt(0, 6).eval(e));
  EXPECT_FALSE(var_gt(0, 7).eval(e));
}

TEST(BoolExpr, ToString) {
  const auto namer = [](VarId v) { return std::string("n") + std::to_string(v); };
  EXPECT_EQ(var_eq(0, 3).to_string(namer), "n0 == 3");
  EXPECT_EQ((var_eq(0, 3) && var_lt(1, 2)).to_string(namer), "(n0 == 3 && n1 < 2)");
  EXPECT_EQ((!var_eq(0, 3)).to_string(namer), "!(n0 == 3)");
}

TEST(BoolExpr, CollectVars) {
  std::vector<VarId> vars;
  (var_eq(2, 1) && var_lt(4, 5)).collect_vars(vars);
  EXPECT_EQ(vars.size(), 2u);
}

TEST(CmpOpStr, AllOperators) {
  EXPECT_EQ(cmp_op_str(CmpOp::kLt), "<");
  EXPECT_EQ(cmp_op_str(CmpOp::kLe), "<=");
  EXPECT_EQ(cmp_op_str(CmpOp::kEq), "==");
  EXPECT_EQ(cmp_op_str(CmpOp::kGe), ">=");
  EXPECT_EQ(cmp_op_str(CmpOp::kGt), ">");
  EXPECT_EQ(cmp_op_str(CmpOp::kNe), "!=");
}

}  // namespace
}  // namespace psv::ta
