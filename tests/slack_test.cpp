// Differential gate for the slack / critical-path surface: every reported
// top-K critical trace must be a real behaviour of the model.
//
// Each ranked witness of a bound query is replayed step by step through the
// symbolic semantics (sim/replay.h) under the exploration's recorded
// extrapolation constants. The replay must succeed, the final state must
// satisfy the query predicate, and — for sweep-engine traces, whose
// constants keep the probe-clock bound exact — the replayed DBM upper bound
// must equal the reported delay exactly. Slack arithmetic is pinned too:
// slack = requirement - verified bound, per requirement, with the binding
// requirement being the argmin.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/pim.h"
#include "core/service.h"
#include "core/transform.h"
#include "gpca/pump_model.h"
#include "lang/model_parser.h"
#include "lang/scheme_parser.h"
#include "mc/query.h"
#include "mc/session.h"
#include "mc/state.h"
#include "model_paths.h"
#include "sim/replay.h"

namespace psv {
namespace {

using namespace psv::ta;
using psv::testing::find_model_dir;
using psv::testing::read_file;

// Replay every ranked witness of `result` through `net` and check it
// attains its reported value. `exact_upper` is true for sweep-engine
// results: their witness constants cover the bound, so the replayed
// probe-clock upper bound is exact. Probe-engine constants stop at
// bound - 1, so the final state's upper bound is abstracted to infinity —
// there the replay itself (plus predicate satisfaction) is the gate.
void expect_ranked_replayable(const ta::Network& net, const mc::MaxClockResult& result,
                              const mc::StateFormula& pred, ta::ClockId clock,
                              bool exact_upper, const std::string& label) {
  ASSERT_TRUE(result.bounded) << label;
  ASSERT_FALSE(result.ranked.empty()) << label;
  EXPECT_EQ(result.ranked.front().value, result.bound) << label;
  for (std::size_t i = 1; i < result.ranked.size(); ++i)
    EXPECT_LE(result.ranked[i].value, result.ranked[i - 1].value)
        << label << " ranked[" << i << "] out of order";
  for (std::size_t i = 0; i < result.ranked.size(); ++i) {
    const mc::RankedWitness& w = result.ranked[i];
    const sim::ReplayResult replay = sim::replay_trace(net, w.trace, result.witness_consts);
    ASSERT_TRUE(replay.ok) << label << " ranked[" << i << "]: " << replay.error;
    EXPECT_EQ(replay.steps_matched, w.trace.steps.size()) << label;
    EXPECT_TRUE(mc::satisfies(net, replay.final_state, pred))
        << label << " ranked[" << i << "] final state misses the predicate";
    const auto upper = sim::replayed_clock_max(replay.final_state, clock);
    if (exact_upper) {
      ASSERT_TRUE(upper.has_value()) << label << " ranked[" << i << "]";
      EXPECT_EQ(*upper, w.value) << label << " ranked[" << i << "]";
    } else if (upper.has_value()) {
      EXPECT_GE(*upper, w.value) << label << " ranked[" << i << "]";
    }
  }
}

// --- Pump case study: top-K traces replay to their reported delays --------

TEST(SlackTraces, PumpTopKTracesReplayExactlySweep) {
  gpca::PumpModelOptions opt;
  opt.include_empty_syringe = false;
  const Network pim = gpca::build_pump_pim(opt);
  const core::PimInfo info = gpca::pump_pim_info(pim);
  const core::PsmArtifacts psm = core::transform(pim, info, gpca::board_scheme(opt));
  const core::InputArtifacts& in = psm.input("BolusReq");
  const core::OutputArtifacts& out = psm.output("StartInfusion");

  const mc::StateFormula in_pred = mc::when(var_eq(in.pending, 1));
  const mc::StateFormula out_pred = mc::when(var_eq(out.pending, 1));
  std::vector<mc::BoundQuery> batch(2);
  batch[0] = {in_pred, in.delay_clock, 100'000, 490, /*top_k=*/5};
  batch[1] = {out_pred, out.delay_clock, 100'000, 440, /*top_k=*/5};

  mc::VerificationSession session(psm.psm);
  const std::vector<mc::MaxClockResult> results = session.max_clock_values(batch);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].bound, 490) << "Table-I Input-Delay";
  EXPECT_EQ(results[1].bound, 440) << "Table-I Output-Delay";
  expect_ranked_replayable(psm.psm, results[0], in_pred, in.delay_clock,
                           /*exact_upper=*/true, "Input-Delay(BolusReq)");
  expect_ranked_replayable(psm.psm, results[1], out_pred, out.delay_clock,
                           /*exact_upper=*/true, "Output-Delay(StartInfusion)");

  // Ranked traces are served from the session memo: no new exploration.
  const int explorations = session.stats().explorations;
  const std::vector<mc::RankedWitness> again = session.top_traces(batch[0]);
  EXPECT_EQ(session.stats().explorations, explorations);
  ASSERT_EQ(again.size(), results[0].ranked.size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].value, results[0].ranked[i].value);
    EXPECT_EQ(again[i].trace.to_string(), results[0].ranked[i].trace.to_string());
  }
}

TEST(SlackTraces, PumpProbeWitnessReplays) {
  gpca::PumpModelOptions opt;
  opt.include_empty_syringe = false;
  const Network pim = gpca::build_pump_pim(opt);
  const core::PimInfo info = gpca::pump_pim_info(pim);
  const core::PsmArtifacts psm = core::transform(pim, info, gpca::board_scheme(opt));
  const core::OutputArtifacts& out = psm.output("StartInfusion");

  mc::ExploreOptions opts;
  opts.engine = mc::QueryEngine::kProbe;
  const mc::StateFormula pred = mc::when(var_eq(out.pending, 1));
  mc::VerificationSession session(psm.psm, opts);
  mc::BoundQuery query{pred, out.delay_clock, 100'000, 440, /*top_k=*/5};
  const mc::MaxClockResult result = session.max_clock_value(query);
  ASSERT_TRUE(result.bounded);
  EXPECT_EQ(result.bound, 440);
  // The probe engine's goal-directed searches only ever materialize the
  // extremal witness.
  ASSERT_EQ(result.ranked.size(), 1u);
  expect_ranked_replayable(psm.psm, result, pred, out.delay_clock,
                           /*exact_upper=*/false, "probe Output-Delay");
}

// Tampered traces must be rejected — the replayer is only a gate if it can
// fail.
TEST(SlackTraces, ReplayRejectsTamperedTraces) {
  gpca::PumpModelOptions opt;
  opt.include_empty_syringe = false;
  const Network pim = gpca::build_pump_pim(opt);
  const core::PimInfo info = gpca::pump_pim_info(pim);
  const core::PsmArtifacts psm = core::transform(pim, info, gpca::board_scheme(opt));
  const core::InputArtifacts& in = psm.input("BolusReq");

  mc::VerificationSession session(psm.psm);
  const mc::MaxClockResult result = session.max_clock_value(
      {mc::when(var_eq(in.pending, 1)), in.delay_clock, 100'000, 490, /*top_k=*/1});
  ASSERT_FALSE(result.ranked.empty());
  ASSERT_GE(result.ranked.front().trace.steps.size(), 2u);

  mc::Trace tampered = result.ranked.front().trace;
  tampered.steps[1].label = "Phantom.l0->l1[boom!]";
  EXPECT_FALSE(sim::replay_trace(psm.psm, tampered, result.witness_consts).ok);

  mc::Trace truncated_consts_trace = result.ranked.front().trace;
  // Replaying under the wrong extrapolation constants must not silently
  // "succeed" with different states: drop the constants entirely.
  const sim::ReplayResult wrong =
      sim::replay_trace(psm.psm, truncated_consts_trace, {});
  // Either the renderings diverge (replay fails) or — if every zone happens
  // to render identically — the replay is still a faithful behaviour. Both
  // are sound; what matters is no crash and a definite verdict.
  if (!wrong.ok) {
    EXPECT_FALSE(wrong.error.empty());
  }

  EXPECT_FALSE(sim::replay_trace(psm.psm, mc::Trace{}, result.witness_consts).ok)
      << "empty traces are not witnesses";
}

// --- Quickstart service surface: slack arithmetic + critical replay -------

TEST(SlackReportService, QuickstartSlackIsExactAndCriticalTracesReplay) {
  const std::string dir = find_model_dir();
  if (dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  const Network pim = lang::parse_model(read_file(dir + "quickstart.psv"));
  const core::PimInfo info = core::analyze_pim(pim);
  const core::ImplementationScheme scheme = lang::parse_scheme(read_file(dir + "fast.pss"));
  const std::vector<core::TimingRequirement> reqs = {
      {"QREQ", "Req", "Ack", 80}, {"QTIGHT", "Req", "Ack", 40}, {"QWIDE", "Req", "Ack", 300}};

  core::Verifier verifier;
  core::VerifyRequest request;
  request.pim = pim;
  request.info = info;
  request.schemes = {scheme};
  request.requirements = reqs;
  const core::VerifyReport report = verifier.verify(request);
  ASSERT_EQ(report.schemes.size(), 1u);
  const core::SchemeVerification& sv = report.schemes.front();
  ASSERT_EQ(sv.slack.requirements.size(), reqs.size());

  // slack = requirement - verified bound, exactly, per requirement.
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    const core::RequirementSlack& rs = sv.slack.requirements[r];
    const core::BoundAnalysis& bounds = sv.requirements[r].bounds;
    EXPECT_EQ(rs.requirement, reqs[r].name);
    EXPECT_EQ(rs.requirement_ms, reqs[r].bound_ms);
    ASSERT_TRUE(rs.bounded) << reqs[r].name;
    EXPECT_EQ(rs.verified_ms, bounds.verified_mc_delay) << reqs[r].name;
    EXPECT_EQ(rs.slack_ms, reqs[r].bound_ms - bounds.verified_mc_delay) << reqs[r].name;
    ASSERT_FALSE(rs.critical.empty()) << reqs[r].name;
    EXPECT_EQ(rs.critical.front().delay_ms, rs.verified_ms) << reqs[r].name;
    for (const core::CriticalTrace& ct : rs.critical)
      EXPECT_EQ(ct.slack_ms, reqs[r].bound_ms - ct.delay_ms) << reqs[r].name;
  }

  // Binding attribution: QTIGHT (bound 40 < verified 59) has the least —
  // and only negative — slack.
  EXPECT_EQ(sv.slack.binding().requirement, "QTIGHT");
  EXPECT_EQ(sv.slack.min_slack_ms, sv.slack.binding().slack_ms);
  EXPECT_LT(sv.slack.min_slack_ms, 0);
  EXPECT_FALSE(sv.slack.any_unbounded);

  // Every critical trace replays through the reconstructed instrumented
  // PSM (transformation + instrumentation are deterministic, so this is
  // the very network the service session explored) and attains its
  // reported delay exactly.
  const core::PsmArtifacts psm = core::transform(pim, info, scheme);
  const core::InstrumentedPsmBatch batch = core::instrument_psm_for_requirements(psm, reqs);
  ASSERT_EQ(batch.mc_probes.size(), reqs.size());
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    const core::RequirementSlack& rs = sv.slack.requirements[r];
    const mc::StateFormula pred = mc::when(var_eq(batch.mc_probes[r].pending, 1));
    for (std::size_t i = 0; i < rs.critical.size(); ++i) {
      const core::CriticalTrace& ct = rs.critical[i];
      const sim::ReplayResult replay =
          sim::replay_trace(batch.net, ct.trace, rs.witness_consts);
      ASSERT_TRUE(replay.ok) << reqs[r].name << " critical[" << i << "]: " << replay.error;
      EXPECT_TRUE(mc::satisfies(batch.net, replay.final_state, pred)) << reqs[r].name;
      const auto upper = sim::replayed_clock_max(replay.final_state, batch.mc_probes[r].clock);
      ASSERT_TRUE(upper.has_value()) << reqs[r].name << " critical[" << i << "]";
      EXPECT_EQ(*upper, ct.delay_ms) << reqs[r].name << " critical[" << i << "]";
    }
  }
}

// top_k = 0 disables retention without disturbing bounds or verdicts.
TEST(SlackReportService, TopKZeroKeepsVerdictsDropsTraces) {
  const std::string dir = find_model_dir();
  if (dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  const Network pim = lang::parse_model(read_file(dir + "quickstart.psv"));
  const core::PimInfo info = core::analyze_pim(pim);
  const core::ImplementationScheme scheme = lang::parse_scheme(read_file(dir + "fast.pss"));

  core::VerifyRequest request;
  request.pim = pim;
  request.info = info;
  request.schemes = {scheme};
  request.requirements = {{"QREQ", "Req", "Ack", 80}};

  core::Verifier verifier;
  const core::VerifyReport with_traces = verifier.verify(request);
  request.options.top_k = 0;
  const core::VerifyReport without = verifier.verify(request);

  ASSERT_EQ(with_traces.schemes.size(), 1u);
  ASSERT_EQ(without.schemes.size(), 1u);
  const core::RequirementSlack& a = with_traces.schemes[0].slack.requirements.at(0);
  const core::RequirementSlack& b = without.schemes[0].slack.requirements.at(0);
  EXPECT_EQ(a.slack_ms, b.slack_ms);
  EXPECT_EQ(a.verified_ms, b.verified_ms);
  EXPECT_FALSE(a.critical.empty());
  EXPECT_TRUE(b.critical.empty());
  EXPECT_EQ(with_traces.schemes[0].requirements[0].passed,
            without.schemes[0].requirements[0].passed);
}

}  // namespace
}  // namespace psv
