// Tests for the shared utility library.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "util/error.h"
#include "util/hash.h"
#include "util/io.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/serde.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace psv {
namespace {

TEST(Hash, EmptyInputIsTheFnvOffsetBasis) {
  // Pins the implementation to the published FNV-1a 128-bit parameters: the
  // digest of zero bytes is the offset basis. Any platform or refactor that
  // changes this silently invalidates every cache key.
  EXPECT_EQ(Hasher128().digest().hex(), "6c62272e07bb014262b821756295c58d");
}

TEST(Hash, KnownByteSequenceIsStable) {
  Hasher128 h;
  h.str("psv").u64(42).u8(7);
  const Digest128 d1 = h.digest();
  Hasher128 again;
  again.str("psv").u64(42).u8(7);
  EXPECT_EQ(d1, again.digest());
  EXPECT_NE(d1, Hasher128().str("psv").u64(42).u8(8).digest());
  EXPECT_EQ(d1.hex().size(), 32u);
}

TEST(Hash, TypedAppendersAreSelfDelimiting) {
  const Digest128 a = Hasher128().str("ab").str("c").digest();
  const Digest128 b = Hasher128().str("a").str("bc").digest();
  EXPECT_NE(a, b);
}

TEST(Json, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json::escape("plain"), "plain");
  EXPECT_EQ(json::escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape(std::string("nul\0l", 5)), "nul\\u0000l");
  EXPECT_EQ(json::escape("tab\there"), "tab\\u0009here");
  EXPECT_EQ(json::escape("newline\n"), "newline\\u000a");
}

TEST(Json, WriterNestsObjectsAndArrays) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.field("name", "pump");
  w.field("count", 3);
  w.field("ratio", 2.5);
  w.field("ok", true);
  w.key("stages");
  w.begin_array();
  w.begin_object();
  w.field("id", std::int64_t{-1});
  w.end_object();
  w.value("tail");
  w.end_array();
  w.key("empty");
  w.begin_array();
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"name\": \"pump\",\n"
            "  \"count\": 3,\n"
            "  \"ratio\": 2.5,\n"
            "  \"ok\": true,\n"
            "  \"stages\": [\n"
            "    {\n"
            "      \"id\": -1\n"
            "    },\n"
            "    \"tail\"\n"
            "  ],\n"
            "  \"empty\": []\n"
            "}");
}

TEST(Json, CompactModeAndKeyEscaping) {
  std::ostringstream os;
  json::Writer w(os, 0);
  w.begin_object();
  w.field("a\"b", 1);
  w.end_object();
  EXPECT_EQ(os.str(), "{\"a\\\"b\":1}");
}

TEST(Json, WriterRejectsMisuse) {
  {
    std::ostringstream os;
    json::Writer w(os);
    w.begin_object();
    EXPECT_THROW(w.value(1), Error) << "object value without a key";
  }
  {
    std::ostringstream os;
    json::Writer w(os);
    w.begin_array();
    EXPECT_THROW(w.key("k"), Error) << "key inside an array";
  }
  {
    std::ostringstream os;
    json::Writer w(os);
    w.begin_object();
    w.key("k");
    EXPECT_THROW(w.end_object(), Error) << "dangling key";
  }
  {
    std::ostringstream os;
    json::Writer w(os);
    w.begin_object();
    EXPECT_THROW(w.end_array(), Error) << "mismatched container";
  }
}

TEST(Io, ReadFileRoundTripsAndReportsErrors) {
  const std::string path = ::testing::TempDir() + "psv_io_test.txt";
  util::write_file(path, "line1\nline2");
  EXPECT_EQ(util::read_file(path), "line1\nline2");
  ASSERT_TRUE(util::try_read_file(path).has_value());
  std::remove(path.c_str());

  const std::string missing = ::testing::TempDir() + "psv_io_test_missing.txt";
  EXPECT_FALSE(util::try_read_file(missing).has_value());
  try {
    util::read_file(missing);
    FAIL() << "read_file of a missing path must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos)
        << "error must name the offending path: " << e.what();
  }
}

TEST(Serde, RoundTripsEveryFieldKind) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xFEFF);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-17);
  w.boolean(true);
  w.str("hello\0world");
  ByteReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xFEFF);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -17);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), std::string("hello\0world", 5));  // literal ends at NUL
  EXPECT_TRUE(r.at_end());
}

TEST(Serde, ReaderThrowsOnTruncation) {
  ByteWriter w;
  w.u64(7);
  w.str("payload");
  const std::vector<std::uint8_t>& bytes = w.buffer();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteReader r(bytes.data(), cut);
    EXPECT_THROW(
        {
          r.u64();
          r.str();
        },
        Error)
        << "prefix length " << cut;
  }
}

TEST(Serde, LengthPrefixValidatedAgainstRemainder) {
  ByteWriter w;
  w.u64(1'000'000'000);  // claims a billion 8-byte elements
  ByteReader r(w.buffer());
  EXPECT_THROW(r.length(8), Error);
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    PSV_REQUIRE(false, "bad input");
    FAIL() << "expected psv::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad input"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(PSV_REQUIRE(1 + 1 == 2, "unreachable"));
}

TEST(Error, AssertThrowsLogicError) {
  EXPECT_THROW(PSV_ASSERT(false, "broken invariant"), std::logic_error);
}

TEST(Stats, SummaryOfKnownSample) {
  Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Stats, SingleObservation) {
  Summary s = summarize({7.5});
  EXPECT_DOUBLE_EQ(s.min, 7.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
  EXPECT_DOUBLE_EQ(s.median, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, EmptySummaryThrows) {
  StatsAccumulator acc;
  EXPECT_THROW(acc.summarize(), Error);
}

TEST(Stats, MedianOfEvenSampleInterpolates) {
  Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Strings, PrefixHelpers) {
  EXPECT_TRUE(starts_with("m_BolusReq", "m_"));
  EXPECT_FALSE(starts_with("c_Start", "m_"));
  EXPECT_EQ(replace_prefix("m_BolusReq", "m_", "i_"), "i_BolusReq");
  EXPECT_EQ(replace_prefix("c_Start", "m_", "i_"), "c_Start");
}

TEST(Strings, Padding) {
  EXPECT_EQ(lpad("ab", 4), "  ab");
  EXPECT_EQ(rpad("ab", 4), "ab  ");
  EXPECT_EQ(lpad("abcd", 2), "abcd");
}

TEST(Table, RendersHeaderAndRows) {
  TextTable t("Demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_separator();
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("+"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  TextTable t("Demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, HeaderlessTableRenders) {
  TextTable t("NoHeader");
  t.add_row({"a", "bb"});
  t.add_row({"ccc", "d"});
  const std::string out = t.render();
  EXPECT_NE(out.find("ccc"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ms(610.4), "610ms");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
}

TEST(Rng, UniformIntStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(10, 20);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

TEST(Rng, DegenerateRanges) {
  Rng r(1);
  EXPECT_EQ(r.uniform_int(5, 5), 5);
  EXPECT_DOUBLE_EQ(r.uniform_real(2.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(r.triangular(3.0, 3.0, 3.0), 3.0);
}

TEST(Rng, TriangularStaysInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.triangular(1.0, 2.0, 10.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 10.0);
  }
}

TEST(Rng, SplitDependsOnParentSeed) {
  // Regression: split() must incorporate the parent's seed, or every
  // scenario in a batch would replay the same platform randomness.
  Rng a = Rng(1).split("platform");
  Rng b = Rng(2).split("platform");
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    any_diff = any_diff || (a.uniform_int(0, 1 << 30) != b.uniform_int(0, 1 << 30));
  EXPECT_TRUE(any_diff);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng root(42);
  Rng a = root.split("input-device");
  Rng b = root.split("output-device");
  // Streams should differ (overwhelmingly likely for distinct tags).
  bool any_diff = false;
  Rng a2 = root.split("input-device");
  for (int i = 0; i < 10; ++i) {
    const auto va = a.uniform_int(0, 1 << 30);
    const auto vb = b.uniform_int(0, 1 << 30);
    const auto va2 = a2.uniform_int(0, 1 << 30);
    EXPECT_EQ(va, va2) << "same tag must reproduce the same stream";
    any_diff = any_diff || (va != vb);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BadRangesThrow) {
  Rng r(1);
  EXPECT_THROW(r.uniform_int(3, 2), Error);
  EXPECT_THROW(r.triangular(1.0, 0.5, 2.0), Error);
}

}  // namespace
}  // namespace psv
