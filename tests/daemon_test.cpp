// End-to-end daemon tests on loopback (net/server.h, net/client.h): wire
// reports bit-identical to in-process runs, out-of-order pipelining,
// warm-pool reuse (repeat request explores zero states server-side),
// admission control (typed BUSY), version negotiation, protocol errors,
// and graceful drain with requests in flight.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/report_serde.h"
#include "core/service.h"
#include "core/synth.h"
#include "model_paths.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "util/error.h"

namespace psv {
namespace {

using psv::testing::find_model_dir;
using psv::testing::read_file;

/// Quickstart sources (cheap model, ~1.2k states per exploration).
struct Sources {
  std::string model;
  std::string fast_scheme;
  std::string late_scheme;
  bool ok = false;

  Sources() {
    const std::string dir = find_model_dir();
    if (dir.empty()) return;
    model = read_file(dir + "quickstart.psv");
    fast_scheme = read_file(dir + "fast.pss");
    late_scheme = read_file(dir + "late.pss");
    ok = true;
  }

  core::SourceRequest request(std::int64_t bound_ms, bool late = false) const {
    core::SourceRequest source;
    source.model_source = model;
    source.scheme_sources = {late ? late_scheme : fast_scheme};
    source.requirements = {{"QREQ", "Req", "Ack", bound_ms}};
    return source;
  }
};

std::vector<std::uint8_t> encode_report(const core::VerifyReport& report) {
  ByteWriter out;
  core::encode_verify_report(out, report);
  return out.take();
}

std::uint64_t total_explorations(const core::VerifyReport& report) {
  std::uint64_t total = 0;
  for (const core::VerifyStageStats& s : report.pim_stages)
    total += static_cast<std::uint64_t>(s.explorations);
  for (const core::SchemeVerification& sv : report.schemes)
    for (const core::VerifyStageStats& s : sv.stages)
      total += static_cast<std::uint64_t>(s.explorations);
  return total;
}

net::ServerConfig loopback_config() {
  net::ServerConfig config;
  config.host = "127.0.0.1";
  config.port = 0;  // ephemeral
  return config;
}

TEST(Daemon, WireReportBitIdenticalToInProcess) {
  Sources src;
  if (!src.ok) GTEST_SKIP() << "example model files not found from test cwd";
  net::Server server(loopback_config());
  server.start();

  const core::SourceRequest source = src.request(80);
  core::Verifier local;
  const core::VerifyReport expected = local.verify(core::to_verify_request(source));

  net::Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.negotiated_version(), net::kProtocolVersion);
  const core::VerifyReport served = client.verify(source);

  // The served report re-encodes to the identical bytes (wall-clock fields
  // travel verbatim, so this compares the server's own run) and renders the
  // identical summary/verdict surface aside from wall clock: compare the
  // deterministic projections.
  EXPECT_EQ(served.summary(), expected.summary());
  EXPECT_EQ(served.all_passed(), expected.all_passed());
  ASSERT_EQ(served.schemes.size(), 1u);
  EXPECT_EQ(served.schemes.front().slack.min_slack_ms,
            expected.schemes.front().slack.min_slack_ms);
  EXPECT_EQ(served.schemes.front().requirements.front().bounds.verified_mc_delay,
            expected.schemes.front().requirements.front().bounds.verified_mc_delay);
  server.stop();
}

TEST(Daemon, PipelinedRequestsCompletePossiblyOutOfOrder) {
  Sources src;
  if (!src.ok) GTEST_SKIP() << "example model files not found from test cwd";
  net::Server server(loopback_config());
  server.start();

  const std::vector<core::SourceRequest> sources = {src.request(80), src.request(40),
                                                    src.request(300, /*late=*/true)};
  core::Verifier local;
  std::vector<std::vector<std::uint8_t>> expected;
  for (const core::SourceRequest& s : sources)
    expected.push_back(encode_report(local.verify(core::to_verify_request(s))));

  net::Client client("127.0.0.1", server.port());
  std::vector<std::uint64_t> ids;
  for (const core::SourceRequest& s : sources) ids.push_back(client.send(s));
  EXPECT_EQ(client.outstanding(), sources.size());

  std::vector<bool> answered(sources.size(), false);
  while (client.outstanding() > 0) {
    net::Client::Response response = client.next_response();
    ASSERT_TRUE(response.ok) << response.error.message;
    // Responses carry the request id; match them back regardless of order.
    std::size_t index = sources.size();
    for (std::size_t i = 0; i < ids.size(); ++i)
      if (ids[i] == response.request_id) index = i;
    ASSERT_LT(index, sources.size());
    EXPECT_FALSE(answered[index]) << "duplicate response for request " << response.request_id;
    answered[index] = true;
    // Bit-identical to the in-process run, except wall clock: the quickest
    // check strips nothing — wall_ms is the server's own measurement and
    // differs run to run, so compare the deterministic summary and the
    // verdict fields instead of raw bytes.
    core::VerifyReport expected_report;
    {
      ByteReader in(expected[index]);
      expected_report = core::decode_verify_report(in);
    }
    EXPECT_EQ(response.report.summary(), expected_report.summary());
    EXPECT_EQ(response.report.all_passed(), expected_report.all_passed());
  }
  for (const bool a : answered) EXPECT_TRUE(a);
  server.stop();
}

TEST(Daemon, WarmRepeatAnswersWithZeroExplorations) {
  Sources src;
  if (!src.ok) GTEST_SKIP() << "example model files not found from test cwd";
  net::Server server(loopback_config());
  server.start();

  net::Client client("127.0.0.1", server.port());
  const core::SourceRequest source = src.request(80);
  const core::VerifyReport cold = client.verify(source);
  const core::VerifyReport warm = client.verify(source);

  EXPECT_GT(total_explorations(cold), 0u);
  EXPECT_EQ(total_explorations(warm), 0u) << "repeat request must be answered from the "
                                             "server-side session pool without exploring";
  EXPECT_EQ(warm.summary(), cold.summary());

  const net::ServerStats stats = client.server_stats();
  EXPECT_EQ(stats.requests_received, 2u);
  EXPECT_EQ(stats.requests_ok, 2u);
  EXPECT_GE(stats.sessions_pooled, 1u);
  EXPECT_EQ(stats.explorations_total, total_explorations(cold));
  server.stop();
}

TEST(Daemon, AdmissionControlRejectsExcessRequestsAsBusy) {
  Sources src;
  if (!src.ok) GTEST_SKIP() << "example model files not found from test cwd";

  std::mutex mu;
  std::condition_variable cv;
  bool entered = false, release = false;
  net::ServerConfig config = loopback_config();
  config.max_inflight = 1;
  config.test_request_hook = [&](std::uint64_t) {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  net::Server server(config);
  server.start();

  net::Client client("127.0.0.1", server.port());
  const std::uint64_t first = client.send(src.request(80));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  // The first request is parked inside the hook; a second one trips the cap.
  const std::uint64_t second = client.send(src.request(40));
  net::Client::Response busy = client.next_response();
  EXPECT_EQ(busy.request_id, second);
  ASSERT_FALSE(busy.ok);
  EXPECT_EQ(busy.error.code, ErrorCode::kBusy);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  net::Client::Response done = client.next_response();
  EXPECT_EQ(done.request_id, first);
  EXPECT_TRUE(done.ok) << done.error.message;
  server.stop();
}

TEST(Daemon, MalformedRequestYieldsTypedErrorNotDisconnect) {
  Sources src;
  if (!src.ok) GTEST_SKIP() << "example model files not found from test cwd";
  net::Server server(loopback_config());
  server.start();

  net::Client client("127.0.0.1", server.port());
  core::SourceRequest bad = src.request(80);
  bad.model_source = "this is not a psv model";
  EXPECT_THROW(
      {
        try {
          (void)client.verify(bad);
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), ErrorCode::kParse);
          throw;
        }
      },
      Error);
  // The connection survives the failed request.
  const core::VerifyReport report = client.verify(src.request(80));
  EXPECT_EQ(report.schemes.size(), 1u);
  server.stop();
}

TEST(Daemon, RejectsUnsupportedClientVersion) {
  net::Server server(loopback_config());
  server.start();

  net::Socket sock = net::connect_to("127.0.0.1", server.port());
  ByteWriter hello;
  hello.u16(0);  // below kMinSupportedVersion
  net::write_frame(sock, net::FrameType::kHello, 0, hello.buffer());
  std::optional<net::Frame> reply = net::read_frame(sock);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, net::FrameType::kError);
  ByteReader in(reply->payload);
  EXPECT_EQ(net::decode_wire_error(in).code, ErrorCode::kProtocol);
  server.stop();
}

TEST(Daemon, RequiresHandshakeBeforeRequests) {
  net::Server server(loopback_config());
  server.start();

  net::Socket sock = net::connect_to("127.0.0.1", server.port());
  // A verify frame before hello is a protocol violation.
  net::write_frame(sock, net::FrameType::kVerify, 1, {});
  std::optional<net::Frame> reply = net::read_frame(sock);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, net::FrameType::kError);
  ByteReader in(reply->payload);
  EXPECT_EQ(net::decode_wire_error(in).code, ErrorCode::kProtocol);
  server.stop();
}

TEST(Daemon, GracefulDrainFinishesInFlightRequests) {
  Sources src;
  if (!src.ok) GTEST_SKIP() << "example model files not found from test cwd";

  std::mutex mu;
  std::condition_variable cv;
  bool entered = false, release = false;
  net::ServerConfig config = loopback_config();
  config.test_request_hook = [&](std::uint64_t) {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  net::Server server(config);
  server.start();
  const std::uint16_t port = server.port();

  net::Client client("127.0.0.1", port);
  const std::uint64_t id = client.send(src.request(80));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  // Drain with the request parked in flight: stop() must wait for it and
  // its response must still reach the client.
  std::thread stopper([&] { server.stop(); });
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  net::Client::Response response = client.next_response();
  EXPECT_EQ(response.request_id, id);
  EXPECT_TRUE(response.ok) << response.error.message;
  stopper.join();

  // After the drain the daemon no longer accepts connections.
  EXPECT_THROW((void)net::Client("127.0.0.1", port), Error);
}

TEST(Daemon, SynthOverWireMatchesInProcess) {
  const std::string dir = find_model_dir();
  if (dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  net::Server server(loopback_config());
  server.start();

  core::SourceSynthRequest source;
  source.model_source = read_file(dir + "quickstart.psv");
  source.template_source = read_file(dir + "fast_sweep.pss");
  source.requirements = {{"QREQ", "Req", "Ack", 80}};
  source.synth.workers = 1;

  core::Verifier local;
  core::SchemeSynthesizer synthesizer(local);
  const core::SynthReport expected = synthesizer.run(core::to_synth_request(source));

  net::Client client("127.0.0.1", server.port());
  ASSERT_GE(client.negotiated_version(), 3);
  const core::SynthReport served = client.synth(source);
  EXPECT_EQ(served.frontier_text(), expected.frontier_text());
  EXPECT_EQ(served.summary(), expected.summary());
  EXPECT_EQ(served.stats.candidates_total, expected.stats.candidates_total);
  EXPECT_EQ(served.pareto, expected.pareto);

  const net::ServerStats stats = client.server_stats();
  EXPECT_EQ(stats.synth_requests, 1u);
  EXPECT_EQ(stats.synth_candidates, expected.stats.candidates_total);
  EXPECT_EQ(stats.synth_explored,
            expected.stats.explored_cold + expected.stats.explored_warm);
  EXPECT_EQ(stats.synth_pruned,
            expected.stats.pruned_analytic + expected.stats.pruned_dominated);
  server.stop();
}

TEST(Daemon, SynthFrameFromV2ClientRejectedWithTypedProtocolError) {
  net::Server server(loopback_config());
  server.start();

  // Handshake as an old (v2) client: the server must accept the connection
  // but reject kSynth frames with a typed error — and keep the connection
  // alive for the traffic v2 does support.
  net::Socket sock = net::connect_to("127.0.0.1", server.port());
  ByteWriter hello;
  hello.u16(2);
  net::write_frame(sock, net::FrameType::kHello, 0, hello.buffer());
  std::optional<net::Frame> ack = net::read_frame(sock);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, net::FrameType::kHelloAck);
  {
    ByteReader in(ack->payload);
    EXPECT_EQ(in.u16(), 2);
  }

  net::write_frame(sock, net::FrameType::kSynth, 7, {});
  std::optional<net::Frame> reply = net::read_frame(sock);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, net::FrameType::kError);
  EXPECT_EQ(reply->request_id, 7u);
  {
    ByteReader in(reply->payload);
    const net::WireError error = net::decode_wire_error(in);
    EXPECT_EQ(error.code, ErrorCode::kProtocol);
    EXPECT_NE(error.message.find("version 3"), std::string::npos);
  }

  // The connection survives: a kStats round trip still works, answered in
  // the v2 layout (no synthesis counters).
  net::write_frame(sock, net::FrameType::kStats, 8, {});
  std::optional<net::Frame> stats_reply = net::read_frame(sock);
  ASSERT_TRUE(stats_reply.has_value());
  ASSERT_EQ(stats_reply->type, net::FrameType::kStatsReport);
  {
    ByteReader in(stats_reply->payload);
    const net::ServerStats stats = net::decode_server_stats(in, 2);
    EXPECT_EQ(stats.synth_requests, 0u);
  }
  server.stop();
}

TEST(Daemon, PrewarmPopulatesSessionPool) {
  const std::string dir = find_model_dir();
  if (dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  // A manifest of two cheap quickstart jobs, with absolute model paths so
  // the temp-dir manifest resolves them regardless of its own location.
  const std::string model = std::filesystem::absolute(dir + "quickstart.psv").string();
  const std::string fast = std::filesystem::absolute(dir + "fast.pss").string();
  const std::string late = std::filesystem::absolute(dir + "late.pss").string();
  const std::string manifest_path =
      (std::filesystem::temp_directory_path() / "psv_prewarm_test.psvb").string();
  util::write_file(manifest_path,
                   "job warm_fast {\n  model " + model + "\n  scheme " + fast +
                       "\n  req QREQ: Req -> Ack within 80\n}\n"
                       "job warm_late {\n  model " + model + "\n  scheme " + late +
                       "\n  req QREQ: Req -> Ack within 80\n}\n");
  net::ServerConfig config = loopback_config();
  config.prewarm_manifest = manifest_path;
  net::Server server(config);
  server.start();

  // Poll the stats until the background pre-warm pass finishes.
  net::Client client("127.0.0.1", server.port());
  net::ServerStats stats;
  for (int i = 0; i < 600; ++i) {
    stats = client.server_stats();
    if (stats.prewarm_jobs + stats.prewarm_failures >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_GE(stats.prewarm_jobs, 2u);
  EXPECT_EQ(stats.prewarm_failures, 0u);
  EXPECT_GE(stats.sessions_pooled, 1u);
  server.stop();
}

}  // namespace
}  // namespace psv
