// The verified-runtime-monitor surface (monitor/, sim/event_tap.h, and the
// Verifier::monitor_spec bridge): obligation-window semantics, the
// trace-concretizing event tap, and the differential contract between the
// in-process DelayMonitor and the generated C99 backend.
//
// The load-bearing gates:
//   * the monitor's window semantics mirror the model checker's requirement
//     probe exactly (late at the completion time, missed at the deadline,
//     overlap keeps timing from the first outstanding request);
//   * a concretized critical trace attains its reported delay EXACTLY, so
//     replaying verified PASS traces through the monitor never fires and
//     replaying FAIL witnesses fires at the exact violation timestamp;
//   * both backends render byte-identical verdict lines on the same stream
//     (compiled with the host C compiler when one is available).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/service.h"
#include "core/transform.h"
#include "lang/model_parser.h"
#include "lang/scheme_parser.h"
#include "model_paths.h"
#include "monitor/cmon.h"
#include "monitor/monitor.h"
#include "sim/event_tap.h"
#include "util/error.h"
#include "util/rng.h"

namespace psv {
namespace {

using psv::testing::find_model_dir;
using psv::testing::read_file;

monitor::MonitorSpec one_req_spec(std::int64_t bound_ms = 80) {
  monitor::MonitorSpec spec;
  spec.scheme = "unit";
  spec.requirements.push_back({"R", "Req", "Ack", bound_ms, bound_ms - 1, true});
  return spec;
}

// --- DelayMonitor window semantics ----------------------------------------

TEST(DelayMonitor, AcceptsCompletionAtExactlyTheBound) {
  monitor::DelayMonitor mon(one_req_spec(80));
  mon.observe('m', "Req", 1000);
  mon.observe('c', "Ack", 1000 + 80'000);  // delay == bound: on time
  mon.finish(200'000);
  EXPECT_TRUE(mon.ok());
  EXPECT_EQ(mon.events(), 2);
  EXPECT_EQ(mon.verdict_text(), "monitor: verdict OK events=2\n");
}

TEST(DelayMonitor, FlagsLateCompletionOneMicrosecondOver) {
  monitor::DelayMonitor mon(one_req_spec(80));
  mon.observe('m', "Req", 1000);
  mon.observe('c', "Ack", 1000 + 80'001);
  mon.finish(200'000);
  ASSERT_FALSE(mon.ok());
  const std::vector<monitor::Violation> vs = mon.violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, monitor::ViolationKind::kLate);
  EXPECT_EQ(vs[0].at_us, 81'001);  // the completion timestamp
  EXPECT_EQ(vs[0].delay_us, 80'001);
  EXPECT_EQ(vs[0].step, 1);
  EXPECT_EQ(mon.verdict_text(),
            "monitor: violation R late step=1 at=81001us delay=80001us bound=80000us\n"
            "monitor: verdict VIOLATION violations=1 events=2\n");
}

TEST(DelayMonitor, FlagsMissedDeadlineAtTheDeadlineItself) {
  monitor::DelayMonitor mon(one_req_spec(80));
  mon.observe('m', "Req", 5000);
  // The next event arrives well past the deadline; the violation is pinned
  // at since + bound, not at the detecting event.
  mon.observe('i', "Req", 500'000);
  mon.finish(600'000);
  ASSERT_FALSE(mon.ok());
  const std::vector<monitor::Violation> vs = mon.violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, monitor::ViolationKind::kMissed);
  EXPECT_EQ(vs[0].at_us, 85'000);
  EXPECT_EQ(vs[0].delay_us, 0);
}

TEST(DelayMonitor, FinishDetectsMissedDeadlineAtEndOfStream) {
  monitor::DelayMonitor mon(one_req_spec(80));
  mon.observe('m', "Req", 0);
  EXPECT_TRUE(mon.ok());
  mon.finish(80'001);
  ASSERT_FALSE(mon.ok());
  EXPECT_EQ(mon.violations().at(0).kind, monitor::ViolationKind::kMissed);
  EXPECT_EQ(mon.violations().at(0).at_us, 80'000);
}

TEST(DelayMonitor, FinishInsideTheWindowIsOk) {
  // PASS critical traces end mid-obligation (the probe predicate is
  // pending==1): end of stream before the deadline must not fire.
  monitor::DelayMonitor mon(one_req_spec(80));
  mon.observe('m', "Req", 0);
  mon.finish(80'000);  // exactly the deadline: still satisfiable
  EXPECT_TRUE(mon.ok());
}

TEST(DelayMonitor, OverlapKeepsTimingFromTheFirstRequest) {
  monitor::DelayMonitor mon(one_req_spec(80));
  mon.observe('m', "Req", 0);
  mon.observe('m', "Req", 50'000);  // overlapping request
  mon.observe('c', "Ack", 81'000);  // 81ms after the FIRST m: late
  mon.finish(100'000);
  ASSERT_FALSE(mon.ok());
  EXPECT_EQ(mon.violations().at(0).kind, monitor::ViolationKind::kLate);
  EXPECT_EQ(mon.violations().at(0).delay_us, 81'000);
}

TEST(DelayMonitor, RecordsOnlyTheFirstViolationPerRequirement) {
  monitor::DelayMonitor mon(one_req_spec(80));
  for (int round = 0; round < 3; ++round) {
    const std::int64_t base = round * 1'000'000;
    mon.observe('m', "Req", base);
    mon.observe('c', "Ack", base + 90'000);
  }
  mon.finish(3'000'000);
  EXPECT_EQ(mon.violations().size(), 1u);
  EXPECT_EQ(mon.events(), 6);
}

TEST(DelayMonitor, IgnoresOtherBoundariesAndNames) {
  monitor::DelayMonitor mon(one_req_spec(80));
  mon.observe('i', "Req", 0);       // program-side input: not an m
  mon.observe('o', "Ack", 10);      // program-side output: not a c
  mon.observe('m', "Other", 20);    // different variable
  mon.observe('c', "Ack", 30);      // no window armed: ignored
  mon.finish(1'000'000);
  EXPECT_TRUE(mon.ok());
  EXPECT_EQ(mon.events(), 4);
}

TEST(DelayMonitor, RejectsNonMonotoneTimestampsAndBadSpecs) {
  monitor::DelayMonitor mon(one_req_spec(80));
  mon.observe('m', "Req", 1000);
  EXPECT_THROW(mon.observe('c', "Ack", 999), Error);

  monitor::MonitorSpec empty;
  EXPECT_THROW(monitor::DelayMonitor{empty}, Error);

  monitor::MonitorSpec dup = one_req_spec();
  dup.requirements.push_back(dup.requirements.front());
  EXPECT_THROW(monitor::DelayMonitor{dup}, Error);

  monitor::MonitorSpec zero = one_req_spec(0);
  EXPECT_THROW(monitor::DelayMonitor{zero}, Error);
}

TEST(DelayMonitor, ResetForgetsWindowsAndViolations) {
  monitor::DelayMonitor mon(one_req_spec(80));
  mon.observe('m', "Req", 0);
  mon.finish(200'000);
  ASSERT_FALSE(mon.ok());
  mon.reset();
  EXPECT_TRUE(mon.ok());
  EXPECT_EQ(mon.events(), 0);
  mon.observe('m', "Req", 0);
  mon.observe('c', "Ack", 10'000);
  mon.finish(20'000);
  EXPECT_TRUE(mon.ok());
}

// Seeded fuzz around the boundary: the monitor's verdict must equal the
// arithmetic predicate delay > bound for completions, and deadline-passage
// for missed windows, for every perturbation.
TEST(DelayMonitor, FuzzedTimestampsAroundTheBoundAgreeWithArithmetic) {
  Rng rng(2015);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t bound_ms = rng.uniform_int(1, 200);
    const std::int64_t m_at = rng.uniform_int(0, 1'000'000);
    // Perturb the completion within ±5us of the deadline to hammer the
    // boundary, plus occasional far misses.
    const std::int64_t jitter = rng.uniform_int(-5, 5);
    const std::int64_t far = rng.chance(0.25) ? rng.uniform_int(0, 100'000) : 0;
    const std::int64_t delay = std::max<std::int64_t>(0, bound_ms * 1000 + jitter + far);
    monitor::DelayMonitor mon(one_req_spec(bound_ms));
    mon.observe('m', "Req", m_at);
    mon.observe('c', "Ack", m_at + delay);
    mon.finish(m_at + delay);
    const bool late = delay > bound_ms * 1000;
    EXPECT_EQ(mon.ok(), !late) << "bound=" << bound_ms << "ms delay=" << delay << "us";
    if (late) {
      ASSERT_EQ(mon.violations().size(), 1u);
      EXPECT_EQ(mon.violations()[0].kind, monitor::ViolationKind::kLate);
      EXPECT_EQ(mon.violations()[0].delay_us, delay);
    }
  }
}

// --- Generated C99 backend ------------------------------------------------

TEST(CMonitor, EmitsSelfContainedTranslationUnit) {
  monitor::MonitorSpec spec;
  spec.scheme = "IS1";
  spec.requirements.push_back({"REQ1", "BolusReq", "StartInfusion", 500, 460, true});
  spec.requirements.push_back({"REQ2", "BolusReq", "StopInfusion", 2500, 1760, true});
  const std::string c = monitor::emit_c_monitor(spec, {"pump"});
  // The ABI surface.
  EXPECT_NE(c.find("void pump_mon_init"), std::string::npos);
  EXPECT_NE(c.find("void pump_mon_observe"), std::string::npos);
  EXPECT_NE(c.find("void pump_mon_finish"), std::string::npos);
  EXPECT_NE(c.find("int pump_mon_status"), std::string::npos);
  EXPECT_NE(c.find("#define PUMP_MON_REQS 2"), std::string::npos);
  // Enum-coded events: the shared m input appears once, both c outputs.
  EXPECT_NE(c.find("PUMP_EV_M_BolusReq"), std::string::npos);
  EXPECT_NE(c.find("PUMP_EV_C_StartInfusion"), std::string::npos);
  EXPECT_NE(c.find("PUMP_EV_C_StopInfusion"), std::string::npos);
  // Bounds travel in microseconds; provenance is stamped in the header.
  EXPECT_NE(c.find("500000"), std::string::npos);
  EXPECT_NE(c.find("2500000"), std::string::npos);
  EXPECT_NE(c.find("scheme IS1"), std::string::npos);
  // Dependency-free: stdio only enters inside the optional driver guard.
  const std::size_t guard = c.find("#ifdef PSV_MON_MAIN");
  const std::size_t stdio = c.find("#include <stdio.h>");
  ASSERT_NE(guard, std::string::npos);
  ASSERT_NE(stdio, std::string::npos);
  EXPECT_GT(stdio, guard);
  EXPECT_THROW(monitor::emit_c_monitor(monitor::MonitorSpec{}), Error);
}

/// True when a host C compiler is reachable as `cc`.
bool have_cc() { return std::system("cc --version > /dev/null 2>&1") == 0; }

/// Compile `c_source` with -std=c99 -Wall -Werror -DPSV_MON_MAIN and run it
/// over `events`, returning the captured stdout.
std::string run_c_monitor(const std::string& c_source, const std::string& events,
                          const std::string& tag) {
  const std::string dir = ::testing::TempDir();
  const std::string src = dir + "/psv_mon_" + tag + ".c";
  const std::string bin = dir + "/psv_mon_" + tag;
  const std::string events_path = dir + "/psv_mon_" + tag + ".events";
  const std::string out_path = dir + "/psv_mon_" + tag + ".out";
  { std::ofstream(src) << c_source; }
  { std::ofstream(events_path) << events; }
  const std::string compile =
      "cc -std=c99 -Wall -Werror -DPSV_MON_MAIN -o " + bin + " " + src + " > /dev/null 2>&1";
  if (std::system(compile.c_str()) != 0) return "<compile failed>";
  const std::string run = bin + " < " + events_path + " > " + out_path + " 2>/dev/null";
  if (std::system(run.c_str()) != 0) return "<run failed>";
  return read_file(out_path);
}

// Differential: a seeded stream of events through both backends must render
// byte-identical verdict lines — including fuzzed timestamps straddling the
// bound and TRACE-separated resets.
TEST(CMonitor, DifferentialAgainstDelayMonitorOnFuzzedStreams) {
  if (!have_cc()) GTEST_SKIP() << "no host C compiler";
  monitor::MonitorSpec spec;
  spec.scheme = "fuzz";
  spec.requirements.push_back({"R1", "Req", "Ack", 80, 59, true});
  spec.requirements.push_back({"R2", "Req", "Done", 120, 90, true});
  const std::string c = monitor::emit_c_monitor(spec);

  Rng rng(4242);
  std::ostringstream events;
  std::ostringstream expected;
  for (int t = 0; t < 24; ++t) {
    monitor::DelayMonitor mon(spec);
    events << "TRACE FUZZ " << t << "\n";
    expected << "monitor: trace FUZZ " << t << "\n";
    std::int64_t at = rng.uniform_int(0, 1000);
    const int n = static_cast<int>(rng.uniform_int(2, 7));
    for (int e = 0; e < n; ++e) {
      const std::int64_t pick = rng.uniform_int(0, 3);
      const char kind = pick == 0 ? 'm' : pick == 1 ? 'c' : pick == 2 ? 'i' : 'o';
      const std::string name =
          rng.chance(0.33) ? "Done" : (pick % 2 == 0 ? "Req" : "Ack");
      // Half the advances straddle a deadline region on purpose.
      at += rng.chance(0.5) ? rng.uniform_int(0, 1000) : rng.uniform_int(79'995, 80'005);
      mon.observe(kind, name, at);
      events << "OBS " << at << " " << kind << " " << name << "\n";
    }
    at += rng.uniform_int(0, 50'000);
    mon.finish(at);
    events << "END " << at << "\n";
    expected << mon.verdict_text();
  }

  const std::string got = run_c_monitor(c, events.str(), "fuzz");
  ASSERT_NE(got, "<compile failed>") << "generated C does not compile warning-clean";
  ASSERT_NE(got, "<run failed>");
  EXPECT_EQ(got, expected.str());
}

// --- monitor_spec: only PASS cells are enforceable ------------------------

TEST(MonitorSpec, BuiltFromPassingReportCarriesProvenance) {
  const std::string dir = find_model_dir();
  if (dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  core::VerifyRequest request;
  request.pim = lang::parse_model(read_file(dir + "quickstart.psv"));
  request.info = core::analyze_pim(request.pim);
  request.schemes = {lang::parse_scheme(read_file(dir + "fast.pss"))};
  request.requirements = {{"QREQ", "Req", "Ack", 80}};
  core::Verifier verifier;
  const core::VerifyReport report = verifier.verify(request);
  ASSERT_TRUE(report.all_passed());

  const monitor::MonitorSpec spec = core::Verifier::monitor_spec(report);
  EXPECT_EQ(spec.scheme, "IS1-fast");
  ASSERT_EQ(spec.requirements.size(), 1u);
  EXPECT_EQ(spec.requirements[0].name, "QREQ");
  EXPECT_EQ(spec.requirements[0].input, "Req");
  EXPECT_EQ(spec.requirements[0].output, "Ack");
  EXPECT_EQ(spec.requirements[0].bound_ms, 80);
  EXPECT_EQ(spec.requirements[0].verified_ms, 59);  // the proved worst case
  EXPECT_TRUE(spec.requirements[0].verified);
}

TEST(MonitorSpec, RefusesFailingReportWithWitnessDelay) {
  const std::string dir = find_model_dir();
  if (dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  core::VerifyRequest request;
  request.pim = lang::parse_model(read_file(dir + "quickstart.psv"));
  request.info = core::analyze_pim(request.pim);
  request.schemes = {lang::parse_scheme(read_file(dir + "late.pss"))};
  request.requirements = {{"QREQ", "Req", "Ack", 80}};
  core::Verifier verifier;
  const core::VerifyReport report = verifier.verify(request);
  ASSERT_FALSE(report.all_passed());
  try {
    (void)core::Verifier::monitor_spec(report);
    FAIL() << "monitor_spec must refuse a FAIL cell";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kModel);
    EXPECT_NE(std::string(e.what()).find("QREQ"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("284ms"), std::string::npos) << e.what();
  }
}

// --- Event tap: concretized traces drive the monitor exactly --------------

/// Verify `scheme_file` against quickstart's QREQ and return report + the
/// reconstructed instrumented batch for tapping.
struct TappedFixture {
  core::VerifyReport report;
  core::InstrumentedPsmBatch batch;
};

TappedFixture verify_quickstart(const std::string& dir, const std::string& scheme_file) {
  core::VerifyRequest request;
  request.pim = lang::parse_model(read_file(dir + "quickstart.psv"));
  request.info = core::analyze_pim(request.pim);
  const core::ImplementationScheme scheme =
      lang::parse_scheme(read_file(dir + scheme_file));
  request.schemes = {scheme};
  request.requirements = {{"QREQ", "Req", "Ack", 80}};
  core::Verifier verifier;
  core::VerifyReport report = verifier.verify(request);
  core::PsmArtifacts psm = core::transform(request.pim, *request.info, scheme);
  core::InstrumentedPsmBatch batch =
      core::instrument_psm_for_requirements(psm, request.requirements);
  return {std::move(report), std::move(batch)};
}

TEST(EventTap, ConcretizesPassTracesExactlyAndMonitorAccepts) {
  const std::string dir = find_model_dir();
  if (dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  TappedFixture fx = verify_quickstart(dir, "fast.pss");
  const core::RequirementSlack& rs = fx.report.schemes[0].slack.requirements.at(0);
  ASSERT_FALSE(rs.critical.empty());

  const monitor::MonitorSpec spec = core::Verifier::monitor_spec(fx.report);
  for (std::size_t k = 0; k < rs.critical.size(); ++k) {
    const core::CriticalTrace& ct = rs.critical[k];
    const sim::TapResult tap =
        sim::tap_trace(fx.batch.net, ct.trace, rs.witness_consts, fx.batch.mc_probes[0].clock);
    ASSERT_TRUE(tap.ok) << "critical[" << k << "]: " << tap.error;
    // Sweep witnesses sit below the extrapolation constants: the schedule
    // attains the recorded delay EXACTLY, not merely an upper bound.
    EXPECT_EQ(tap.max_value_ms, ct.delay_ms) << "critical[" << k << "]";
    ASSERT_FALSE(tap.events.empty());
    for (std::size_t e = 1; e < tap.events.size(); ++e)
      EXPECT_GE(tap.events[e].at_us, tap.events[e - 1].at_us) << "events must be time-ordered";

    monitor::DelayMonitor mon(spec);
    for (const sim::TappedEvent& ev : tap.events) mon.observe(ev.boundary, ev.name, ev.at_us);
    mon.finish(tap.end_us);
    EXPECT_TRUE(mon.ok()) << "critical[" << k << "]:\n" << mon.verdict_text();
  }
}

TEST(EventTap, FailWitnessFiresTheMonitorAtTheExactDeadline) {
  const std::string dir = find_model_dir();
  if (dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  TappedFixture fx = verify_quickstart(dir, "late.pss");
  const core::RequirementResult& rr = fx.report.schemes[0].requirements.at(0);
  ASSERT_FALSE(rr.passed);
  EXPECT_EQ(rr.bounds.verified_mc_delay, 284);
  const core::RequirementSlack& rs = fx.report.schemes[0].slack.requirements.at(0);
  ASSERT_FALSE(rs.critical.empty());
  const core::CriticalTrace& ct = rs.critical.front();
  EXPECT_EQ(ct.delay_ms, 284);

  const sim::TapResult tap =
      sim::tap_trace(fx.batch.net, ct.trace, rs.witness_consts, fx.batch.mc_probes[0].clock);
  ASSERT_TRUE(tap.ok) << tap.error;
  EXPECT_EQ(tap.max_value_ms, 284);

  // monitor_spec refuses the FAIL report; hand-build the spec the way
  // --monitor-check does to watch the witness break the bound.
  monitor::MonitorSpec spec;
  spec.requirements.push_back({"QREQ", "Req", "Ack", 80, 284, false});
  monitor::DelayMonitor mon(spec);
  std::int64_t m_at = -1;
  for (const sim::TappedEvent& ev : tap.events) {
    if (ev.boundary == 'm' && m_at < 0) m_at = ev.at_us;
    mon.observe(ev.boundary, ev.name, ev.at_us);
  }
  mon.finish(tap.end_us);
  ASSERT_GE(m_at, 0) << "the witness must cross the m boundary";
  ASSERT_FALSE(mon.ok());
  const monitor::Violation v = mon.violations().at(0);
  // The violation is pinned at the deadline of the first outstanding
  // request — exact to the microsecond.
  EXPECT_EQ(v.kind, monitor::ViolationKind::kMissed);
  EXPECT_EQ(v.at_us, m_at + 80'000);
}

TEST(EventTap, RejectsTamperedTraces) {
  const std::string dir = find_model_dir();
  if (dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  TappedFixture fx = verify_quickstart(dir, "fast.pss");
  const core::RequirementSlack& rs = fx.report.schemes[0].slack.requirements.at(0);
  ASSERT_FALSE(rs.critical.empty());
  mc::Trace tampered = rs.critical.front().trace;
  ASSERT_GE(tampered.steps.size(), 2u);
  tampered.steps[1].label = "Phantom.l0->l1[boom!]";
  const sim::TapResult tap =
      sim::tap_trace(fx.batch.net, tampered, rs.witness_consts, fx.batch.mc_probes[0].clock);
  EXPECT_FALSE(tap.ok);
  EXPECT_NE(tap.error.find("step 1"), std::string::npos) << tap.error;

  const sim::TapResult empty =
      sim::tap_trace(fx.batch.net, mc::Trace{}, rs.witness_consts, fx.batch.mc_probes[0].clock);
  EXPECT_FALSE(empty.ok);
}

// End-to-end differential on a real verified artifact: the generated C
// monitor (from the PASS spec) must byte-agree with DelayMonitor on both
// the PASS traces and the FAIL witness stream.
TEST(EventTap, GeneratedCMonitorAgreesOnRealTraces) {
  if (!have_cc()) GTEST_SKIP() << "no host C compiler";
  const std::string dir = find_model_dir();
  if (dir.empty()) GTEST_SKIP() << "example model files not found from test cwd";
  TappedFixture pass = verify_quickstart(dir, "fast.pss");
  TappedFixture fail = verify_quickstart(dir, "late.pss");
  const monitor::MonitorSpec spec = core::Verifier::monitor_spec(pass.report);
  const std::string c = monitor::emit_c_monitor(spec);

  std::ostringstream events;
  std::ostringstream expected;
  auto stream_fixture = [&](const TappedFixture& fx, const char* tag) {
    const core::RequirementSlack& rs = fx.report.schemes[0].slack.requirements.at(0);
    for (std::size_t k = 0; k < rs.critical.size(); ++k) {
      const sim::TapResult tap = sim::tap_trace(fx.batch.net, rs.critical[k].trace,
                                                rs.witness_consts, fx.batch.mc_probes[0].clock);
      ASSERT_TRUE(tap.ok) << tag << " critical[" << k << "]: " << tap.error;
      monitor::DelayMonitor mon(spec);
      events << "TRACE " << tag << " " << k << "\n";
      expected << "monitor: trace " << tag << " " << k << "\n";
      for (const sim::TappedEvent& ev : tap.events) {
        mon.observe(ev.boundary, ev.name, ev.at_us);
        events << "OBS " << ev.at_us << " " << ev.boundary << " " << ev.name << "\n";
      }
      mon.finish(tap.end_us);
      events << "END " << tap.end_us << "\n";
      expected << mon.verdict_text();
      // The PASS spec enforces the same "Req -> Ack within 80" on both
      // streams, so FAIL traces must show a violation here.
      EXPECT_EQ(mon.ok(), rs.critical[k].delay_ms <= 80) << tag << " critical[" << k << "]";
    }
  };
  stream_fixture(pass, "PASS");
  stream_fixture(fail, "FAIL");

  const std::string got = run_c_monitor(c, events.str(), "real");
  ASSERT_NE(got, "<compile failed>") << "generated C does not compile warning-clean";
  ASSERT_NE(got, "<run failed>");
  EXPECT_EQ(got, expected.str());
}

}  // namespace
}  // namespace psv
