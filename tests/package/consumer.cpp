// One-file consumer of the installed psv package: builds a tiny timed
// automaton through the public headers and verifies a known delay bound
// with both query engines. Exercises include paths, the exported target,
// and its Threads dependency.
#include <cstdio>

#include "mc/query.h"
#include "ta/model.h"

int main() {
  using namespace psv;
  ta::Network net("consumer");
  const ta::ClockId x = net.add_clock("x");
  ta::Automaton a("A");
  const ta::LocId l0 = a.add_location("L0");
  const ta::LocId l1 = a.add_location("L1", ta::LocKind::kNormal, {ta::cc_le(x, 7)});
  ta::Edge e;
  e.src = l0;
  e.dst = l1;
  e.guard.clocks = {ta::cc_ge(x, 2)};
  a.add_edge(e);
  net.add_automaton(std::move(a));

  for (const mc::QueryEngine engine : {mc::QueryEngine::kSweep, mc::QueryEngine::kProbe}) {
    mc::ExploreOptions opts;
    opts.engine = engine;
    const mc::MaxClockResult r = mc::max_clock_value(net, mc::at(net, "A", "L1"), x, 1000, opts);
    if (!r.bounded || r.bound != 7) {
      std::printf("FAIL: engine %d reported bound %lld\n", static_cast<int>(engine),
                  static_cast<long long>(r.bound));
      return 1;
    }
  }
  std::printf("ok: installed psv package answers bound=7 with both engines\n");
  return 0;
}
