// Tests for the timed-automata model, validation and printing.
#include <gtest/gtest.h>

#include "ta/model.h"
#include "ta/print.h"
#include "ta/validate.h"
#include "util/error.h"

namespace psv::ta {
namespace {

using psv::Error;

// A tiny two-automaton network: a sender pings on channel `go`, a receiver
// accepts; one clock with an invariant, one variable.
Network make_ping_network() {
  Network net("ping");
  const ClockId x = net.add_clock("x");
  const VarId count = net.add_var("count", 0, 0, 10);
  const ChanId go = net.add_channel("go", ChanKind::kBinary);

  Automaton sender("Sender");
  const LocId s0 = sender.add_location("Idle");
  const LocId s1 = sender.add_location("Done", LocKind::kNormal, {cc_le(x, 5)});
  Edge e;
  e.src = s0;
  e.dst = s1;
  e.guard.clocks.push_back(cc_ge(x, 1));
  e.sync = SyncLabel::send(go);
  e.update.assignments.push_back({count, IntExpr::var(count) + IntExpr::constant(1)});
  e.update.resets.push_back({x, 0});
  sender.add_edge(e);
  net.add_automaton(std::move(sender));

  Automaton receiver("Receiver");
  const LocId r0 = receiver.add_location("Wait");
  const LocId r1 = receiver.add_location("Got");
  Edge r;
  r.src = r0;
  r.dst = r1;
  r.sync = SyncLabel::receive(go);
  receiver.add_edge(r);
  net.add_automaton(std::move(receiver));
  return net;
}

TEST(Automaton, FirstLocationIsInitial) {
  Automaton a("A");
  const LocId l0 = a.add_location("first");
  a.add_location("second");
  EXPECT_EQ(a.initial(), l0);
}

TEST(Automaton, SetInitialOverrides) {
  Automaton a("A");
  a.add_location("first");
  const LocId l1 = a.add_location("second");
  a.set_initial(l1);
  EXPECT_EQ(a.initial(), l1);
}

TEST(Automaton, DuplicateLocationNameRejected) {
  Automaton a("A");
  a.add_location("L");
  EXPECT_THROW(a.add_location("L"), Error);
}

TEST(Automaton, EdgeEndpointsValidated) {
  Automaton a("A");
  a.add_location("L");
  Edge e;
  e.src = 0;
  e.dst = 5;
  EXPECT_THROW(a.add_edge(e), Error);
}

TEST(Automaton, LocByNameAndEdgesFrom) {
  Network net = make_ping_network();
  const Automaton& sender = net.automaton(0);
  EXPECT_EQ(sender.loc_by_name("Idle"), 0);
  EXPECT_EQ(sender.loc_by_name("Done"), 1);
  EXPECT_THROW(sender.loc_by_name("Nope"), Error);
  EXPECT_EQ(sender.edges_from(0).size(), 1u);
  EXPECT_TRUE(sender.edges_from(1).empty());
}

TEST(Network, DeclarationsAndLookups) {
  Network net = make_ping_network();
  EXPECT_EQ(net.num_clocks(), 1);
  EXPECT_EQ(net.num_vars(), 1);
  EXPECT_EQ(net.channels().size(), 1u);
  EXPECT_EQ(net.num_automata(), 2);
  EXPECT_EQ(net.clock_by_name("x"), std::optional<ClockId>(0));
  EXPECT_EQ(net.var_by_name("count"), std::optional<VarId>(0));
  EXPECT_EQ(net.channel_by_name("go"), std::optional<ChanId>(0));
  EXPECT_EQ(net.automaton_by_name("Receiver"), std::optional<AutomatonId>(1));
  EXPECT_FALSE(net.clock_by_name("nope").has_value());
}

TEST(Network, DuplicateNamesRejected) {
  Network net;
  net.add_clock("x");
  EXPECT_THROW(net.add_clock("x"), Error);
  net.add_var("v", 0, 0, 1);
  EXPECT_THROW(net.add_var("v", 0, 0, 1), Error);
  net.add_channel("c", ChanKind::kBinary);
  EXPECT_THROW(net.add_channel("c", ChanKind::kBroadcast), Error);
}

TEST(Network, VarRangeValidated) {
  Network net;
  EXPECT_THROW(net.add_var("v", 5, 0, 4), Error);
  EXPECT_THROW(net.add_var("w", 0, 3, 2), Error);
}

TEST(Network, InitialVars) {
  Network net;
  net.add_var("a", 3, 0, 5);
  net.add_var("b", -1, -2, 2);
  const auto init = net.initial_vars();
  ASSERT_EQ(init.size(), 2u);
  EXPECT_EQ(init[0], 3);
  EXPECT_EQ(init[1], -1);
}

TEST(Validate, WellFormedNetworkPasses) {
  const Network net = make_ping_network();
  const ValidationReport report = validate(net);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_NO_THROW(validate_or_throw(net));
}

TEST(Validate, EmptyNetworkFails) {
  Network net("empty");
  EXPECT_FALSE(validate(net).ok());
  EXPECT_THROW(validate_or_throw(net), Error);
}

TEST(Validate, LowerBoundInvariantRejected) {
  Network net;
  const ClockId x = net.add_clock("x");
  Automaton a("A");
  a.add_location("L", LocKind::kNormal, {cc_ge(x, 3)});
  net.add_automaton(std::move(a));
  const ValidationReport report = validate(net);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("upper bounds"), std::string::npos);
}

TEST(Validate, UndeclaredClockInGuardRejected) {
  Network net;
  Automaton a("A");
  const LocId l = a.add_location("L");
  Edge e;
  e.src = l;
  e.dst = l;
  e.guard.clocks.push_back(cc_le(7, 1));
  a.add_edge(e);
  net.add_automaton(std::move(a));
  EXPECT_FALSE(validate(net).ok());
}

TEST(Validate, UndeclaredVariableInAssignmentRejected) {
  Network net;
  Automaton a("A");
  const LocId l = a.add_location("L");
  Edge e;
  e.src = l;
  e.dst = l;
  e.update.assignments.push_back({9, IntExpr::constant(0)});
  a.add_edge(e);
  net.add_automaton(std::move(a));
  EXPECT_FALSE(validate(net).ok());
}

TEST(Validate, BroadcastReceiveWithClockGuardRejected) {
  Network net;
  const ClockId x = net.add_clock("x");
  const ChanId b = net.add_channel("sig", ChanKind::kBroadcast);
  Automaton a("A");
  const LocId l = a.add_location("L");
  Edge e;
  e.src = l;
  e.dst = l;
  e.sync = SyncLabel::receive(b);
  e.guard.clocks.push_back(cc_le(x, 2));
  a.add_edge(e);
  net.add_automaton(std::move(a));
  const ValidationReport report = validate(net);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("broadcast"), std::string::npos);
}

TEST(Validate, BinaryReceiveWithClockGuardAllowed) {
  Network net;
  const ClockId x = net.add_clock("x");
  const ChanId b = net.add_channel("sig", ChanKind::kBinary);
  Automaton a("A");
  const LocId l = a.add_location("L");
  Edge e;
  e.src = l;
  e.dst = l;
  e.sync = SyncLabel::receive(b);
  e.guard.clocks.push_back(cc_le(x, 2));
  a.add_edge(e);
  net.add_automaton(std::move(a));
  Automaton s("S");
  const LocId sl = s.add_location("L");
  Edge se;
  se.src = sl;
  se.dst = sl;
  se.sync = SyncLabel::send(b);
  s.add_edge(se);
  net.add_automaton(std::move(s));
  EXPECT_TRUE(validate(net).ok());
}

TEST(Validate, HalfUsedBinaryChannelWarns) {
  Network net;
  const ChanId c = net.add_channel("only_send", ChanKind::kBinary);
  Automaton a("A");
  const LocId l = a.add_location("L");
  Edge e;
  e.src = l;
  e.dst = l;
  e.sync = SyncLabel::send(c);
  a.add_edge(e);
  net.add_automaton(std::move(a));
  const ValidationReport report = validate(net);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.warnings.empty());
}

TEST(Validate, NegativeClockResetRejected) {
  Network net;
  const ClockId x = net.add_clock("x");
  Automaton a("A");
  const LocId l = a.add_location("L");
  Edge e;
  e.src = l;
  e.dst = l;
  e.update.resets.push_back({x, -1});
  a.add_edge(e);
  net.add_automaton(std::move(a));
  EXPECT_FALSE(validate(net).ok());
}

TEST(ClockMaxConstants, CollectsFromGuardsInvariantsResets) {
  Network net;
  const ClockId x = net.add_clock("x");
  const ClockId y = net.add_clock("y");
  const ClockId z = net.add_clock("z");
  Automaton a("A");
  const LocId l0 = a.add_location("L0", LocKind::kNormal, {cc_le(x, 100)});
  const LocId l1 = a.add_location("L1");
  Edge e;
  e.src = l0;
  e.dst = l1;
  e.guard.clocks.push_back(cc_ge(x, 250));
  e.guard.clocks.push_back(cc_lt(y, 30));
  e.update.resets.push_back({y, 7});
  a.add_edge(e);
  net.add_automaton(std::move(a));

  const auto consts = clock_max_constants(net);
  ASSERT_EQ(consts.size(), 3u);
  EXPECT_EQ(consts[static_cast<std::size_t>(x)], 250);
  EXPECT_EQ(consts[static_cast<std::size_t>(y)], 30);
  EXPECT_EQ(consts[static_cast<std::size_t>(z)], -1);  // never compared
}

TEST(Print, GuardAndUpdateStrings) {
  Network net = make_ping_network();
  const Edge& e = net.automaton(0).edges()[0];
  EXPECT_EQ(guard_str(net, e.guard), "x>=1");
  EXPECT_EQ(update_str(net, e.update), "count := (count + 1), x := 0");
  EXPECT_EQ(sync_str(net, e.sync), "go!");
}

TEST(Print, AutomatonText) {
  Network net = make_ping_network();
  const std::string text = automaton_text(net, 0);
  EXPECT_NE(text.find("automaton Sender"), std::string::npos);
  EXPECT_NE(text.find("Idle"), std::string::npos);
  EXPECT_NE(text.find("[initial]"), std::string::npos);
  EXPECT_NE(text.find("x<=5"), std::string::npos);
  EXPECT_NE(text.find("go!"), std::string::npos);
}

TEST(Print, NetworkText) {
  Network net = make_ping_network();
  const std::string text = network_text(net);
  EXPECT_NE(text.find("network ping"), std::string::npos);
  EXPECT_NE(text.find("clocks: x"), std::string::npos);
  EXPECT_NE(text.find("Receiver"), std::string::npos);
}

TEST(Print, Dot) {
  Network net = make_ping_network();
  const std::string dot = automaton_dot(net, 0);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("L0 -> L1"), std::string::npos);
  EXPECT_NE(dot.find("go!"), std::string::npos);
}

TEST(Print, UrgentAndCommittedTags) {
  Network net;
  Automaton a("A");
  a.add_location("N");
  a.add_location("U", LocKind::kUrgent);
  a.add_location("C", LocKind::kCommitted);
  net.add_automaton(std::move(a));
  const std::string text = automaton_text(net, 0);
  EXPECT_NE(text.find("[urgent]"), std::string::npos);
  EXPECT_NE(text.find("[committed]"), std::string::npos);
}

}  // namespace
}  // namespace psv::ta
