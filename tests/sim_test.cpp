// Tests for the discrete-event kernel, the simulated platform, and the
// trace replayer's error paths.
#include <gtest/gtest.h>

#include "core/transform.h"
#include "gpca/pump_model.h"
#include "mc/query.h"
#include "mc/session.h"
#include "sim/kernel.h"
#include "sim/platform.h"
#include "sim/replay.h"
#include "sim/runner.h"
#include "ta/expr.h"
#include "util/error.h"

namespace psv::sim {
namespace {

using psv::Error;

TEST(Kernel, EventsFireInTimeOrder) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(ms(30), [&order] { order.push_back(3); });
  k.schedule_at(ms(10), [&order] { order.push_back(1); });
  k.schedule_at(ms(20), [&order] { order.push_back(2); });
  k.run_until(ms(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.now(), ms(100));
}

TEST(Kernel, EqualTimesFifo) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) k.schedule_at(ms(10), [&order, i] { order.push_back(i); });
  k.run_until(ms(10));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Kernel, NestedScheduling) {
  Kernel k;
  int fired = 0;
  k.schedule_at(ms(5), [&] {
    ++fired;
    k.schedule_in(ms(5), [&] { ++fired; });
  });
  k.run_until(ms(20));
  EXPECT_EQ(fired, 2);
}

TEST(Kernel, RunUntilStopsEarly) {
  Kernel k;
  int fired = 0;
  k.schedule_at(ms(50), [&] { ++fired; });
  k.run_until(ms(10));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(k.now(), ms(10));
  k.run_until(ms(100));
  EXPECT_EQ(fired, 1);
}

TEST(Kernel, PastSchedulingRejected) {
  Kernel k;
  k.schedule_at(ms(10), [] {});
  k.run_until(ms(20));
  EXPECT_THROW(k.schedule_at(ms(5), [] {}), Error);
}

// --- Platform ----------------------------------------------------------------

struct PumpFixture {
  ta::Network pim = gpca::build_pump_pim();
  core::PimInfo info = gpca::pump_pim_info(pim);
  core::ImplementationScheme scheme = gpca::board_scheme();
};

TEST(Platform, BolusRequestFlowsThroughAllBoundaries) {
  PumpFixture f;
  Kernel kernel;
  PlatformSim platform(kernel, f.pim, f.info, f.scheme, SimCalibration{}, Rng(7));
  platform.start();
  kernel.schedule_at(ms(500), [&] { platform.inject_input("BolusReq"); });
  kernel.run_until(ms(10000));

  bool saw_m = false, saw_i = false, saw_o = false, saw_c = false;
  for (const BoundaryEvent& e : platform.events()) {
    saw_m = saw_m || (e.boundary == Boundary::kMonitored && e.name == "BolusReq");
    saw_i = saw_i || (e.boundary == Boundary::kProgramIn && e.name == "BolusReq");
    saw_o = saw_o || (e.boundary == Boundary::kProgramOut && e.name == "StartInfusion");
    saw_c = saw_c || (e.boundary == Boundary::kControlled && e.name == "StartInfusion");
  }
  EXPECT_TRUE(saw_m && saw_i && saw_o && saw_c);
  EXPECT_EQ(platform.stats().missed_inputs, 0);
  EXPECT_EQ(platform.stats().input_overflows, 0);
  EXPECT_GT(platform.stats().invocations, 0);
}

TEST(Platform, EventTimesAreMonotonicPerTransaction) {
  PumpFixture f;
  Kernel kernel;
  PlatformSim platform(kernel, f.pim, f.info, f.scheme, SimCalibration{}, Rng(11));
  platform.start();
  kernel.schedule_at(ms(100), [&] { platform.inject_input("BolusReq"); });
  kernel.run_until(ms(10000));

  auto result = extract_delays(platform.events(), gpca::req1());
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->mi_ms, 0.0);
  EXPECT_GT(result->oc_ms, 0.0);
  EXPECT_GT(result->mc_ms, result->mi_ms);
  EXPECT_GT(result->mc_ms, result->oc_ms);
}

TEST(Platform, RepeatedPressWhileLatchedIsMissed) {
  PumpFixture f;
  Kernel kernel;
  PlatformSim platform(kernel, f.pim, f.info, f.scheme, SimCalibration{}, Rng(3));
  platform.start();
  // Two presses 1ms apart: the second finds the latch still set (polling
  // interval is 240ms, so the first press cannot have been sampled yet).
  kernel.schedule_at(ms(100), [&] { platform.inject_input("BolusReq"); });
  kernel.schedule_at(ms(101), [&] { platform.inject_input("BolusReq"); });
  kernel.run_until(ms(5000));
  EXPECT_EQ(platform.stats().missed_inputs, 1);
}

TEST(Platform, UnknownInputRejected) {
  PumpFixture f;
  Kernel kernel;
  PlatformSim platform(kernel, f.pim, f.info, f.scheme, SimCalibration{}, Rng(5));
  platform.start();
  EXPECT_THROW(platform.inject_input("Nope"), Error);
}

TEST(Platform, DoubleStartRejected) {
  PumpFixture f;
  Kernel kernel;
  PlatformSim platform(kernel, f.pim, f.info, f.scheme, SimCalibration{}, Rng(5));
  platform.start();
  EXPECT_THROW(platform.start(), Error);
}

// --- Runner ----------------------------------------------------------------

TEST(Runner, ExtractDelaysPairsBoundaries) {
  std::vector<BoundaryEvent> events = {
      {ms(100), Boundary::kMonitored, "BolusReq"},
      {ms(150), Boundary::kProgramIn, "BolusReq"},
      {ms(400), Boundary::kProgramOut, "StartInfusion"},
      {ms(600), Boundary::kControlled, "StartInfusion"},
  };
  auto r = extract_delays(events, gpca::req1());
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->mc_ms, 500.0);
  EXPECT_DOUBLE_EQ(r->mi_ms, 50.0);
  EXPECT_DOUBLE_EQ(r->oc_ms, 200.0);
}

TEST(Runner, ExtractDelaysIncompleteStream) {
  std::vector<BoundaryEvent> events = {
      {ms(100), Boundary::kMonitored, "BolusReq"},
      {ms(150), Boundary::kProgramIn, "BolusReq"},
  };
  EXPECT_FALSE(extract_delays(events, gpca::req1()).has_value());
}

TEST(Runner, ExtractDelaysIgnoresOtherSignals) {
  std::vector<BoundaryEvent> events = {
      {ms(50), Boundary::kMonitored, "EmptySyringe"},
      {ms(100), Boundary::kMonitored, "BolusReq"},
      {ms(120), Boundary::kProgramIn, "EmptySyringe"},
      {ms(150), Boundary::kProgramIn, "BolusReq"},
      {ms(300), Boundary::kProgramOut, "StopInfusion"},
      {ms(400), Boundary::kProgramOut, "StartInfusion"},
      {ms(500), Boundary::kControlled, "StopInfusion"},
      {ms(600), Boundary::kControlled, "StartInfusion"},
  };
  auto r = extract_delays(events, gpca::req1());
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->mc_ms, 500.0);
}

TEST(Runner, BatchIsDeterministicPerSeed) {
  PumpFixture f;
  MeasurementConfig config;
  config.scenarios = 10;
  config.seed = 99;
  MeasurementSummary a = measure_requirement(f.pim, f.info, f.scheme, gpca::req1(), config);
  MeasurementSummary b = measure_requirement(f.pim, f.info, f.scheme, gpca::req1(), config);
  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  for (std::size_t i = 0; i < a.scenarios.size(); ++i)
    EXPECT_DOUBLE_EQ(a.scenarios[i].mc_ms, b.scenarios[i].mc_ms);
}

TEST(Runner, BatchStatisticsSane) {
  PumpFixture f;
  MeasurementConfig config;
  config.scenarios = 30;
  config.seed = 2015;
  MeasurementSummary s = measure_requirement(f.pim, f.info, f.scheme, gpca::req1(), config);
  EXPECT_EQ(s.incomplete, 0);
  EXPECT_EQ(s.buffer_overflows, 0);
  EXPECT_LE(s.mi.min, s.mi.mean + 1e-9);
  EXPECT_LE(s.mi.mean, s.mi.max + 1e-9);
  EXPECT_GT(s.mi.stddev, 0.0) << "scenario randomness must vary the delays";
  // Structural bounds: Input-Delay within the Lemma-1 bound (490), M-C
  // delay within the Lemma-2 bound (1430).
  EXPECT_LE(s.mi.max, 490.0);
  EXPECT_LE(s.mc.max, 1430.0);
  EXPECT_GT(s.mc.min, 0.0);
}

TEST(Runner, ViolationCounting) {
  MeasurementSummary s;
  ScenarioResult ok;
  ok.completed = true;
  ok.mc_ms = 450;
  ScenarioResult late;
  late.completed = true;
  late.mc_ms = 700;
  s.scenarios = {ok, late, late};
  EXPECT_EQ(s.violations(500.0), 2);
  EXPECT_EQ(s.violations(1000.0), 0);
}

// --- Replay error paths ---------------------------------------------------

// A tampered trace must be rejected with the EXACT first-mismatch step —
// replay errors are what the CI differential gates print, so their
// positions have to be trustworthy.
TEST(Replay, ReportsExactFirstMismatchStepOnTamperedState) {
  gpca::PumpModelOptions opt;
  opt.include_empty_syringe = false;
  const ta::Network pim = gpca::build_pump_pim(opt);
  const core::PimInfo info = gpca::pump_pim_info(pim);
  const core::PsmArtifacts psm = core::transform(pim, info, gpca::board_scheme(opt));
  const core::InputArtifacts& in = psm.input("BolusReq");
  mc::VerificationSession session(psm.psm);
  const mc::MaxClockResult result = session.max_clock_value(
      {mc::when(ta::var_eq(in.pending, 1)), in.delay_clock, 100'000, 490, /*top_k=*/1});
  ASSERT_FALSE(result.ranked.empty());
  const mc::Trace& good = result.ranked.front().trace;
  ASSERT_GE(good.steps.size(), 3u);

  // Keep the label valid but corrupt the RENDERED SUCCESSOR STATE: the
  // replayer must reject at exactly that step, having matched everything
  // before it — both early and at the tail.
  for (const std::size_t i : {std::size_t{1}, good.steps.size() - 1}) {
    mc::Trace tampered = good;
    tampered.steps[i].state += " ghost";
    const ReplayResult r = replay_trace(psm.psm, tampered, result.witness_consts);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.steps_matched, i) << "matched prefix must stop at the tampered step";
    EXPECT_NE(r.error.find("step " + std::to_string(i) + ":"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find(tampered.steps[i].label), std::string::npos)
        << "the error must name the label it could not match";
  }

  // Corrupted initial rendering (step 0 has no label to mismatch on).
  mc::Trace initial = good;
  initial.steps[0].state = "bogus";
  const ReplayResult bad_init = replay_trace(psm.psm, initial, result.witness_consts);
  EXPECT_FALSE(bad_init.ok);
  EXPECT_EQ(bad_init.steps_matched, 0u);
  EXPECT_NE(bad_init.error.find("initial state mismatch"), std::string::npos) << bad_init.error;

  // A label on step 0 is structurally malformed.
  mc::Trace labeled = good;
  labeled.steps[0].label = "X.l0->l1[boom!]";
  const ReplayResult bad_label = replay_trace(psm.psm, labeled, result.witness_consts);
  EXPECT_FALSE(bad_label.ok);
  EXPECT_NE(bad_label.error.find("step 0"), std::string::npos) << bad_label.error;
}

}  // namespace
}  // namespace psv::sim
