// Code generation demo: emit the C implementation of Code(PIM) for the
// pump software and drive the in-process step program through a bolus
// cycle, printing the invocation-by-invocation behavior.
//
// Build & run:  ./build/examples/codegen_demo
#include <iostream>

#include "codegen/cemit.h"
#include "codegen/stepcode.h"
#include "gpca/pump_model.h"

using namespace psv;

int main() {
  ta::Network pim = gpca::build_pump_pim();
  core::PimInfo info = gpca::pump_pim_info(pim);

  // The C translation unit a code generator would hand to the platform
  // integrator (the paper uses the TIMES tool for this step).
  codegen::CEmitOptions options;
  options.prefix = "gpca";
  std::cout << "==== generated C (excerpt: first 40 lines) ====\n";
  const std::string c = codegen::emit_c(pim, info, options);
  std::size_t line = 0, pos = 0;
  while (line < 40 && pos != std::string::npos) {
    const std::size_t next = c.find('\n', pos);
    std::cout << c.substr(pos, next - pos) << "\n";
    pos = next == std::string::npos ? next : next + 1;
    ++line;
  }
  std::cout << "... (" << c.size() << " bytes total)\n\n";

  // The same contract exercised in-process: a 100ms invocation loop.
  std::cout << "==== in-process invocation loop (period 100ms) ====\n";
  codegen::StepProgram code(pim, info);
  constexpr std::int64_t kMs = 1000;
  for (std::int64_t t = 0; t <= 2000; t += 100) {
    std::vector<std::string> inputs;
    if (t == 300) inputs.push_back("BolusReq");      // patient presses at 300ms
    if (t == 1000) inputs.push_back("EmptySyringe"); // syringe empties at 1s
    const codegen::StepResult r = code.step(t * kMs, inputs);
    if (!inputs.empty() || !r.outputs.empty()) {
      std::cout << "t=" << t << "ms";
      for (const std::string& in : inputs) std::cout << "  read " << in;
      for (const std::string& out : r.outputs) std::cout << "  write " << out;
      std::cout << "  -> " << code.location() << "\n";
    }
  }
  return 0;
}
