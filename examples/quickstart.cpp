// Quickstart: the full platform-specific timing verification pipeline on a
// small request/response system.
//
//   1. model a PIM (software M and environment ENV),
//   2. verify the timing requirement on the PIM,
//   3. pick an implementation scheme,
//   4. transform PIM -> PSM,
//   5. check the boundedness constraints and compute the relaxed bound.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/framework.h"
#include "ta/print.h"

using namespace psv;

namespace {

// M: Idle --m_Req?--> Working[x<=80] --x>=30, c_Ack!--> Idle
// ENV: Idle --env_x>=100, m_Req!--> Await --c_Ack?--> Idle
ta::Network build_pim() {
  ta::Network net("quickstart");
  const ta::ClockId x = net.add_clock("x");
  const ta::ClockId env_x = net.add_clock("env_x");
  const ta::ChanId req = net.add_channel("m_Req", ta::ChanKind::kBinary);
  const ta::ChanId ack = net.add_channel("c_Ack", ta::ChanKind::kBinary);

  ta::Automaton m("M");
  const ta::LocId idle = m.add_location("Idle");
  const ta::LocId working = m.add_location("Working", ta::LocKind::kNormal, {ta::cc_le(x, 80)});
  ta::Edge accept;
  accept.src = idle;
  accept.dst = working;
  accept.sync = ta::SyncLabel::receive(req);
  accept.update.resets = {{x, 0}};
  m.add_edge(std::move(accept));
  ta::Edge reply;
  reply.src = working;
  reply.dst = idle;
  reply.guard.clocks = {ta::cc_ge(x, 30)};
  reply.sync = ta::SyncLabel::send(ack);
  m.add_edge(std::move(reply));
  net.add_automaton(std::move(m));

  ta::Automaton env("ENV");
  const ta::LocId eidle = env.add_location("Idle");
  const ta::LocId await = env.add_location("Await");
  ta::Edge send;
  send.src = eidle;
  send.dst = await;
  send.guard.clocks = {ta::cc_ge(env_x, 100)};
  send.sync = ta::SyncLabel::send(req);
  send.update.resets = {{env_x, 0}};
  env.add_edge(std::move(send));
  ta::Edge recv;
  recv.src = await;
  recv.dst = eidle;
  recv.sync = ta::SyncLabel::receive(ack);
  recv.update.resets = {{env_x, 0}};
  env.add_edge(std::move(recv));
  net.add_automaton(std::move(env));
  return net;
}

}  // namespace

int main() {
  // 1. The platform-independent model.
  ta::Network pim = build_pim();
  core::PimInfo info = core::analyze_pim(pim);
  std::cout << "--- PIM ---\n" << ta::network_text(pim) << "\n";

  // 2. The timing requirement: Ack within 80ms of Req.
  core::TimingRequirement req{"QREQ", "Req", "Ack", 80};

  // 3. An implementation scheme: interrupts, buffers, 10ms periodic task.
  core::ImplementationScheme scheme = core::example_is1({"Req"}, {"Ack"});
  scheme.io.period = 10;
  scheme.io.read_stage_max = 1;
  scheme.io.compute_stage_max = 1;
  scheme.io.write_stage_max = 1;
  std::cout << "--- scheme ---\n" << scheme.describe() << "\n";

  // 4.+5. Transform, check constraints, derive bounds.
  core::FrameworkOptions options;
  options.search_limit = 10000;
  core::FrameworkResult result = core::run_framework(pim, info, scheme, req, options);
  std::cout << result.summary() << "\n";

  std::cout << "The platform adds at most "
            << result.bounds.lemma2_total - result.pim.max_delay
            << "ms on top of the software's own worst case.\n";
  return result.constraints.all_hold() && result.psm_meets_relaxed ? 0 : 1;
}
