// Scheme explorer: compare implementation schemes for the same PIM.
//
// The paper's §III observes that different implementation schemes lead to
// different delays (polling prolongs detection; aperiodic invocation reacts
// immediately; buffers versus shared slots trade loss for staleness). This
// example sweeps a family of schemes over the pump's REQ1 pipeline and
// reports, per scheme, the analytic Lemma-1/Lemma-2 bounds and whether the
// original 500ms requirement would survive on that platform.
//
// Build & run:  ./build/examples/scheme_explorer
#include <iostream>

#include "core/analysis.h"
#include "core/schedulability.h"
#include "core/scheme.h"
#include "gpca/pump_model.h"
#include "util/table.h"

using namespace psv;

namespace {

core::ImplementationScheme variant(const std::string& name, core::ReadMechanism read,
                                   std::int32_t poll_interval,
                                   core::InvocationKind invocation, std::int32_t period) {
  gpca::PumpModelOptions opt;
  core::ImplementationScheme is = gpca::board_scheme(opt);
  is.name = name;
  auto& bolus = is.inputs.at("BolusReq");
  bolus.read = read;
  bolus.polling_interval = poll_interval;
  bolus.signal = read == core::ReadMechanism::kPolling
                     ? core::SignalType::kSustainedUntilRead
                     : core::SignalType::kPulse;
  is.io.invocation = invocation;
  is.io.period = period;
  return is;
}

}  // namespace

int main() {
  const std::int64_t pim_bound = 500;  // the pump PIM's own worst case
  const core::TimingRequirement req1{"REQ1", "BolusReq", "StartInfusion", 500};

  const std::vector<core::ImplementationScheme> schemes = {
      variant("board (poll 240 / period 200)", core::ReadMechanism::kPolling, 240,
              core::InvocationKind::kPeriodic, 200),
      variant("fast poll (60 / period 200)", core::ReadMechanism::kPolling, 60,
              core::InvocationKind::kPeriodic, 200),
      variant("interrupt / period 200", core::ReadMechanism::kInterrupt, 0,
              core::InvocationKind::kPeriodic, 200),
      variant("interrupt / period 50", core::ReadMechanism::kInterrupt, 0,
              core::InvocationKind::kPeriodic, 50),
      variant("interrupt / aperiodic", core::ReadMechanism::kInterrupt, 0,
              core::InvocationKind::kAperiodic, 0),
  };

  TextTable table("Scheme comparison for REQ1 (pump PIM internal bound 500ms)");
  table.set_header({"scheme", "input bound", "output bound", "Lemma-2 total",
                    "P(500) plausible?"});
  table.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kLeft});
  for (const core::ImplementationScheme& is : schemes) {
    const std::int64_t in_bound = core::analytic_input_delay_bound(is, req1.input);
    const std::int64_t out_bound = core::analytic_output_delay_bound(is, req1.output);
    const std::int64_t total = core::analytic_requirement_bound(is, req1, pim_bound);
    table.add_row({is.name, fmt_ms(static_cast<double>(in_bound)),
                   fmt_ms(static_cast<double>(out_bound)),
                   fmt_ms(static_cast<double>(total)), total <= 500 ? "yes" : "no"});
  }
  std::cout << table.render();
  std::cout << "\nNo scheme keeps the original 500ms bound: the software alone may\n"
               "use all of it. Platform-aware development must either relax the\n"
               "requirement (Lemma 2) or redesign the software budget.\n";
  return 0;
}
