// The paper's case study end to end (§VI): GPCA infusion pump, REQ1.
//
//   * verify REQ1 on the pump PIM (holds, worst case exactly 500ms),
//   * transform under the board's implementation scheme (polled bolus
//     button, 200ms periodic task, buffered io-boundary),
//   * show that the PSM violates the original P(500),
//   * discharge constraints C1-C4 and derive the relaxed bound
//     delta' = 490 + 440 + 500 = 1430ms,
//   * run 60 simulated bolus scenarios on the platform simulator and check
//     every measurement against the verified bound (Table I).
//
// Build & run:  ./build/examples/infusion_pump   (takes a few minutes: the
// full model-checking pipeline runs on the reduced pump model)
#include <iostream>

#include "core/framework.h"
#include "gpca/pump_model.h"
#include "sim/runner.h"
#include "util/table.h"

using namespace psv;

int main() {
  gpca::PumpModelOptions model_options;
  model_options.include_empty_syringe = false;  // REQ1 path only (faster MC)
  ta::Network pim = gpca::build_pump_pim(model_options);
  core::PimInfo info = gpca::pump_pim_info(pim);
  core::TimingRequirement req = gpca::req1(model_options);
  core::ImplementationScheme scheme = gpca::board_scheme(model_options);

  std::cout << scheme.describe() << "\n";

  core::FrameworkOptions options;
  options.search_limit = 100000;
  core::FrameworkResult result = core::run_framework(pim, info, scheme, req, options);
  std::cout << result.summary() << "\n";

  // The measured side: 60 simulated bolus-request scenarios.
  sim::MeasurementConfig config;
  config.scenarios = 60;
  config.seed = 2015;
  config.calibration = gpca::board_calibration();
  sim::MeasurementSummary measured =
      sim::measure_requirement(pim, info, scheme, req, config);

  TextTable table("Simulated measurements (60 bolus scenarios)");
  table.set_header({"delay", "avg", "max", "min"});
  table.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
  table.add_row({"M-C delay", fmt_ms(measured.mc.mean), fmt_ms(measured.mc.max),
                 fmt_ms(measured.mc.min)});
  table.add_row({"Input-Delay", fmt_ms(measured.mi.mean), fmt_ms(measured.mi.max),
                 fmt_ms(measured.mi.min)});
  table.add_row({"Output-Delay", fmt_ms(measured.oc.mean), fmt_ms(measured.oc.max),
                 fmt_ms(measured.oc.min)});
  std::cout << table.render() << "\n";

  const int violations = measured.violations(static_cast<double>(req.bound_ms));
  std::cout << violations << "/" << config.scenarios
            << " scenarios violate the original P(500) (paper: 53/60)\n";
  std::cout << "all measurements below the verified bound "
            << result.bounds.lemma2_total << "ms? "
            << (measured.mc.max <= static_cast<double>(result.bounds.lemma2_total) ? "yes"
                                                                                   : "NO")
            << "\n";
  return 0;
}
