// Buffer-overrun detection — the scenario the paper singles out (§III,
// Discussions) as beyond earlier platform-aware approaches:
//
//   "Although a platform successfully detects an input from the
//    environment, the platform-independent code may not be able to receive
//    it due to a buffer overrun."
//
// A bursty environment fires three pulses in quick succession. The platform
// catches each interrupt, but with a 1-slot io-boundary buffer and a slow
// read-one invocation loop the third processed input finds the buffer full
// and is dropped — Constraint 2 is violated and the model checker produces
// a witness. Enlarging the buffer (or switching to read-all) repairs the
// scheme, and the framework verifies that.
//
// Build & run:  ./build/examples/buffer_overrun
#include <iostream>

#include "core/constraints.h"
#include "core/transform.h"
#include "mc/reach.h"
#include "ta/model.h"

using namespace psv;

namespace {

// ENV fires a burst of three pulses, 5ms apart; M counts what it receives.
ta::Network bursty_pim() {
  ta::Network net("burst");
  const ta::ClockId gap = net.add_clock("gap");
  const ta::VarId seen = net.add_var("seen", 0, 0, 3);
  const ta::ChanId sig = net.add_channel("m_Sig", ta::ChanKind::kBinary);
  const ta::ChanId done = net.add_channel("c_Done", ta::ChanKind::kBinary);

  ta::Automaton m("M");
  const ta::LocId collect = m.add_location("Collect");
  ta::Edge consume;
  consume.src = collect;
  consume.dst = collect;
  consume.sync = ta::SyncLabel::receive(sig);
  consume.update.assignments.push_back(
      {seen, ta::IntExpr::var(seen) + ta::IntExpr::constant(1)});
  m.add_edge(std::move(consume));
  const ta::LocId report = m.add_location("Report");
  ta::Edge finish;
  finish.src = collect;
  finish.dst = report;
  finish.guard.data = ta::var_eq(seen, 3);
  finish.sync = ta::SyncLabel::send(done);
  m.add_edge(std::move(finish));
  net.add_automaton(std::move(m));

  ta::Automaton env("ENV");
  ta::LocId prev = env.add_location("P0");
  for (int k = 1; k <= 3; ++k) {
    const ta::LocId next = env.add_location("P" + std::to_string(k));
    ta::Edge fire;
    fire.src = prev;
    fire.dst = next;
    fire.guard.clocks = {ta::cc_ge(gap, 5)};
    fire.sync = ta::SyncLabel::send(sig);
    fire.update.resets = {{gap, 0}};
    fire.note = "burst pulse " + std::to_string(k);
    env.add_edge(std::move(fire));
    prev = next;
  }
  const ta::LocId idle = env.add_location("Done");
  ta::Edge observe;
  observe.src = prev;
  observe.dst = idle;
  observe.sync = ta::SyncLabel::receive(done);
  env.add_edge(std::move(observe));
  net.add_automaton(std::move(env));
  return net;
}

core::ImplementationScheme burst_scheme(std::int32_t buffer_size, core::ReadPolicy policy) {
  core::ImplementationScheme is = core::example_is1({"Sig"}, {"Done"});
  is.name = "burst-" + std::to_string(buffer_size);
  is.inputs.at("Sig").delay_min = 1;
  is.inputs.at("Sig").delay_max = 2;
  is.io.period = 50;  // slow reader vs a 5ms burst
  is.io.buffer_size = buffer_size;
  is.io.read_policy = policy;
  is.io.read_stage_max = 2;
  is.io.compute_stage_max = 2;
  is.io.write_stage_max = 2;
  return is;
}

bool report(const char* label, const core::ConstraintReport& r) {
  std::cout << "--- " << label << " ---\n" << r.to_string() << "\n";
  return r.all_hold();
}

}  // namespace

int main() {
  ta::Network pim = bursty_pim();
  core::PimInfo info = core::analyze_pim(pim);

  // 1-slot buffer, read-one: the burst overruns the io-boundary.
  core::PsmArtifacts broken =
      core::transform(pim, info, burst_scheme(1, core::ReadPolicy::kReadOne));
  const bool broken_holds =
      report("buffer size 1, read-one", core::check_constraints(broken));

  // Witness trace for the overflow.
  mc::ReachResult witness = mc::reachable(
      broken.psm, mc::when(ta::var_eq(broken.input("Sig").overflow, 1)));
  if (witness.reachable) {
    std::cout << "overflow witness (" << witness.trace.steps.size() - 1 << " steps):\n";
    // Print only the step labels; the full states are long.
    for (const auto& step : witness.trace.steps)
      if (!step.label.empty()) std::cout << "    " << step.label << "\n";
    std::cout << "\n";
  }

  // 5-slot buffer, read-all: the same burst is absorbed.
  core::PsmArtifacts fixed =
      core::transform(pim, info, burst_scheme(5, core::ReadPolicy::kReadAll));
  const bool fixed_holds =
      report("buffer size 5, read-all", core::check_constraints(fixed));

  std::cout << (!broken_holds && fixed_holds
                    ? "The framework detects the overrun and verifies the repair.\n"
                    : "UNEXPECTED constraint outcome!\n");
  return !broken_holds && fixed_holds ? 0 : 1;
}
